package topo

import (
	"fmt"
	"net/netip"
	"sort"

	"repro/internal/asn"
	"repro/internal/bgp"
	"repro/internal/ip2as"
	"repro/internal/ixp"
	"repro/internal/rir"
)

// export materializes the measurement datasets bdrmapIT consumes: the
// multi-collector BGP RIB, the RIR extended delegations, and the IXP
// prefix directory.
func (in *Internet) export() {
	in.exportAnnouncements()
	in.exportRIB()
	in.exportRIR()
	in.exportIXPs()
}

// announcement is one (prefix, origin) pair injected into BGP.
type announcement struct {
	prefix netip.Prefix
	origin asn.ASN
	// halfView restricts the announcement to half the collectors (used
	// for the weaker MOAS origin so the true owner stays dominant).
	halfView bool
}

func (in *Internet) exportAnnouncements() {
	in.announcements = nil
	others := make([]*AS, len(in.ASList))
	copy(others, in.ASList)

	for _, a := range in.ASList {
		switch {
		case a.ReallocFrom != nil:
			// Reallocated customers: ground truth owner of the block.
			in.prefixOwner[a.ReallocPrefix] = a
			if a.ReallocFlavor == ReallocVisible || a.ReallocFlavor == ReallocInvisible {
				// Announce the host /24; the second /24 stays silent,
				// covered by the provider's aggregate.
				in.announcements = append(in.announcements,
					announcement{prefix: a.HostPrefix, origin: a.ASN})
			}
		case a.InfraRIROnly:
			// Announce only the host half; infrastructure space is
			// resolvable through RIR delegations alone.
			in.prefixOwner[a.Space] = a
			hostHalf := netip.PrefixFrom(a.Space.Addr(), 20)
			in.announcements = append(in.announcements,
				announcement{prefix: hostHalf, origin: a.ASN})
			for _, p := range a.ExtraSpace {
				in.prefixOwner[p] = a
			}
		default:
			in.prefixOwner[a.Space] = a
			in.announcements = append(in.announcements,
				announcement{prefix: a.Space, origin: a.ASN})
			// Extra infrastructure aggregates are announced like the
			// primary one, so spilled link space resolves identically.
			for _, p := range a.ExtraSpace {
				in.prefixOwner[p] = a
				in.announcements = append(in.announcements,
					announcement{prefix: p, origin: a.ASN})
			}
		}
		// Occasional MOAS: another AS also announces the host /24 to
		// half the collectors.
		if in.rng.Float64() < in.Cfg.PMOAS && a.ReallocFrom == nil {
			other := others[in.rng.Intn(len(others))]
			if other != a {
				in.announcements = append(in.announcements,
					announcement{prefix: a.HostPrefix, origin: a.ASN},
					announcement{prefix: a.HostPrefix, origin: other.ASN, halfView: true})
			}
		}
	}
	// IXP LAN leaks: a member originates the LAN prefix.
	for _, x := range in.IXPs {
		if len(x.Members) > 0 && in.rng.Float64() < in.Cfg.PIXPLanInBGP {
			m := x.Members[in.rng.Intn(len(x.Members))]
			in.announcements = append(in.announcements,
				announcement{prefix: x.Prefix, origin: m.ASN, halfView: true})
		}
	}
}

// collectors picks the route-collector peer ASes: a mix of tier-1 and
// transit networks, deterministically.
func (in *Internet) collectors() []asn.ASN {
	var pool []asn.ASN
	for _, a := range in.ASList {
		if a.Type == Tier1 || a.Type == Transit {
			pool = append(pool, a.ASN)
		}
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i] < pool[j] })
	n := in.Cfg.Collectors
	if n <= 0 || n > len(pool) {
		n = len(pool)
	}
	// Spread across the pool.
	out := make([]asn.ASN, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, pool[i*len(pool)/n])
	}
	return out
}

func (in *Internet) exportRIB() {
	cols := in.collectors()
	for _, ann := range in.announcements {
		use := cols
		if ann.halfView {
			use = cols[:(len(cols)+1)/2]
		}
		for _, c := range use {
			path, ok := in.BGPPathTo(c, ann.origin)
			if !ok {
				continue
			}
			elems := make([]bgp.PathElem, len(path))
			for i, a := range path {
				elems[i] = bgp.PathElem{AS: a}
			}
			in.Routes = append(in.Routes, bgp.Route{Prefix: ann.prefix, Path: elems})
		}
	}
}

func (in *Internet) exportRIR() {
	in.Delegations = rir.New()
	for _, a := range in.ASList {
		if a.ReallocFrom != nil {
			continue // reallocated space is delegated to the provider
		}
		in.Delegations.AddPrefix(a.Space, a.ASN)
		for _, p := range a.ExtraSpace {
			in.Delegations.AddPrefix(p, a.ASN)
		}
	}
}

// RIRRecords renders the delegation data in the real extended file
// format (for the file-based CLI path).
func (in *Internet) RIRRecords() []rir.Record {
	var recs []rir.Record
	for _, a := range in.ASList {
		if a.ReallocFrom != nil {
			continue
		}
		oid := fmt.Sprintf("org-%d", a.ASN)
		recs = append(recs, rir.Record{
			Registry: "simrir", CC: "ZZ", Type: "asn",
			Start: fmt.Sprintf("%d", uint32(a.ASN)), Value: 1,
			Date: "20180201", Status: "assigned", OpaqueID: oid,
		})
		recs = append(recs, rir.Record{
			Registry: "simrir", CC: "ZZ", Type: "ipv4",
			Start: a.Space.Addr().String(), Value: 1 << 16,
			Date: "20180201", Status: "allocated", OpaqueID: oid,
		})
		for _, p := range a.ExtraSpace {
			recs = append(recs, rir.Record{
				Registry: "simrir", CC: "ZZ", Type: "ipv4",
				Start: p.Addr().String(), Value: 1 << 16,
				Date: "20180201", Status: "allocated", OpaqueID: oid,
			})
		}
	}
	return recs
}

func (in *Internet) exportIXPs() {
	in.IXPPrefixes = ixp.NewSet()
	for _, x := range in.IXPs {
		in.IXPPrefixes.Add(x.Prefix)
	}
}

// Resolver assembles the layered IP→AS resolver over the exported
// datasets, exactly as the tool consumes them.
func (in *Internet) Resolver() *ip2as.Resolver {
	return &ip2as.Resolver{
		IXPs:        in.IXPPrefixes,
		Table:       bgp.NewTable(in.Routes),
		Delegations: in.Delegations,
	}
}

// ASPaths returns the cleaned AS paths of the exported RIB, the input
// to relationship inference.
func (in *Internet) ASPaths() [][]asn.ASN {
	out := make([][]asn.ASN, 0, len(in.Routes))
	for _, r := range in.Routes {
		out = append(out, r.ASPath())
	}
	return out
}

// RoutedPrefixes returns every BGP-announced prefix — the target list
// bdrmap's reactive collection probes ("every prefix routed in the
// Internet").
func (in *Internet) RoutedPrefixes() []netip.Prefix {
	seen := make(map[netip.Prefix]bool)
	var out []netip.Prefix
	for _, ann := range in.announcements {
		if !seen[ann.prefix] {
			seen[ann.prefix] = true
			out = append(out, ann.prefix)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr() != out[j].Addr() {
			return out[i].Addr().Less(out[j].Addr())
		}
		return out[i].Bits() < out[j].Bits()
	})
	return out
}
