// Package mapit reimplements the MAP-IT comparator (Marder & Smith,
// IMC 2016): iterative inference of interdomain links over an
// interface-level graph with localized majority voting. bdrmapIT's
// evaluation (paper §7.2) compares against it on Internet-wide
// datasets; MAP-IT lacks alias resolution, destination-AS evidence, and
// edge-network heuristics, which costs it coverage of last-hop and
// low-visibility links.
package mapit

import (
	"net/netip"
	"sort"

	"repro/internal/asn"
	"repro/internal/ip2as"
	"repro/internal/netutil"
	"repro/internal/traceroute"
)

// Options tunes the inference.
type Options struct {
	// Threshold is the neighbour-majority fraction required to infer an
	// interdomain half-link (default 0.5, MAP-IT's plurality rule).
	Threshold float64
	// MaxIterations caps the refinement loop (default 20).
	MaxIterations int
}

func (o *Options) defaults() {
	if o.Threshold <= 0 {
		o.Threshold = 0.5
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 20
	}
}

// node is one interface in the interface-level graph.
type node struct {
	addr     netip.Addr
	origin   asn.ASN
	operator asn.ASN // refined operator of the router using this interface
	farSide  asn.ASN // inferred AS on the other side of the link, if any
	next     map[netip.Addr]int
	prev     map[netip.Addr]int
}

// Result is a MAP-IT run outcome.
type Result struct {
	// Iterations is the number of refinement passes executed.
	Iterations int

	nodes map[netip.Addr]*node
}

// OperatorOf returns the inferred operator of the router using addr
// (the origin AS when MAP-IT made no inference for it).
func (r *Result) OperatorOf(addr netip.Addr) asn.ASN {
	if n, ok := r.nodes[addr]; ok {
		return n.operator
	}
	return asn.None
}

// ConnectedAS returns the inferred far-side AS of addr's link, or
// asn.None when MAP-IT labeled no interdomain link at addr.
func (r *Result) ConnectedAS(addr netip.Addr) asn.ASN {
	if n, ok := r.nodes[addr]; ok {
		return n.farSide
	}
	return asn.None
}

// InterdomainInterfaces returns the addresses MAP-IT inferred to sit on
// an interdomain link, sorted.
func (r *Result) InterdomainInterfaces() []netip.Addr {
	var out []netip.Addr
	for a, n := range r.nodes {
		if n.farSide != asn.None {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Infer runs MAP-IT over the traces. Only TTL-adjacent hop pairs form
// edges (MAP-IT does not bridge unresponsive gaps), and no alias
// resolution or destination evidence is used — both faithful to the
// original tool and the source of its coverage gap.
func Infer(traces []*traceroute.Trace, resolver *ip2as.Resolver, opts Options) *Result {
	opts.defaults()
	res := &Result{nodes: make(map[netip.Addr]*node)}
	get := func(addr netip.Addr) *node {
		n, ok := res.nodes[addr]
		if !ok {
			origin := resolver.Lookup(addr).Origin
			n = &node{
				addr: addr, origin: origin, operator: origin,
				next: make(map[netip.Addr]int), prev: make(map[netip.Addr]int),
			}
			res.nodes[addr] = n
		}
		return n
	}
	for _, t := range traces {
		var prev *traceroute.Hop
		for i := range t.Hops {
			h := &t.Hops[i]
			if netutil.IsSpecial(h.Addr) {
				prev = nil
				continue
			}
			get(h.Addr)
			if prev != nil && h.ProbeTTL == prev.ProbeTTL+1 && prev.Addr != h.Addr {
				get(prev.Addr).next[h.Addr]++
				get(h.Addr).prev[prev.Addr]++
			}
			prev = h
		}
	}

	addrs := make([]netip.Addr, 0, len(res.nodes))
	for a := range res.nodes {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })

	for iter := 1; iter <= opts.MaxIterations; iter++ {
		res.Iterations = iter
		changed := false
		for _, a := range addrs {
			n := res.nodes[a]
			if n.origin == asn.None {
				continue
			}
			// Far-half test: the majority of *subsequent* interfaces have
			// addresses originated by B ≠ origin — the path dived into
			// B's address space right after this interface, so the
			// interface (addressed from the origin AS's side of the
			// link) is the ingress of B's border router.
			if b, ok := majority(res, n.next, n.origin, opts.Threshold, false); ok {
				if n.operator != b || n.farSide != n.origin {
					n.operator = b
					n.farSide = n.origin
					changed = true
				}
				continue
			}
			// Near-half test: the majority of *preceding* interfaces sit
			// on routers operated by B ≠ origin (using refined operators,
			// MAP-IT's graph-refinement step) — this interface is on the
			// origin AS's border router receiving traffic from B.
			if b, ok := majority(res, n.prev, n.origin, opts.Threshold, true); ok {
				if n.operator != n.origin || n.farSide != b {
					n.operator = n.origin
					n.farSide = b
					changed = true
				}
				continue
			}
			if n.operator != n.origin || n.farSide != asn.None {
				n.operator = n.origin
				n.farSide = asn.None
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return res
}

// majority returns the AS holding more than threshold of the weighted
// neighbour votes, if it differs from self. With useOperator the
// neighbours' refined operators vote (the MAP-IT graph-refinement
// step); otherwise their address origins do.
func majority(res *Result, nbrs map[netip.Addr]int, self asn.ASN, threshold float64, useOperator bool) (asn.ASN, bool) {
	votes := make(asn.Counter)
	total := 0
	for addr, w := range nbrs {
		n := res.nodes[addr]
		v := n.origin
		if useOperator {
			v = n.operator
		}
		if v == asn.None {
			continue
		}
		votes.Inc(v, w)
		total += w
	}
	if total == 0 {
		return asn.None, false
	}
	top, n := votes.Max()
	if len(top) != 1 {
		return asn.None, false
	}
	if top[0] == self {
		return asn.None, false
	}
	if float64(n) <= threshold*float64(total) {
		return asn.None, false
	}
	// A half-link interface sits entirely past (or before) the border:
	// any vote for the interface's own AS means it still fans into its
	// origin's space and is not a far half.
	if !useOperator && votes[self] > 0 {
		return asn.None, false
	}
	return top[0], true
}
