package mapit

import (
	"net/netip"
	"strings"
	"testing"

	"repro/internal/bgp"
	"repro/internal/ip2as"
	"repro/internal/traceroute"
)

func resolver(t *testing.T, ribs string) *ip2as.Resolver {
	t.Helper()
	routes, err := bgp.ReadRoutes(strings.NewReader(ribs))
	if err != nil {
		t.Fatal(err)
	}
	return &ip2as.Resolver{Table: bgp.NewTable(routes)}
}

func trace(hops ...string) *traceroute.Trace {
	t := &traceroute.Trace{Dst: netip.MustParseAddr("9.9.9.9")}
	for i, h := range hops {
		t.Hops = append(t.Hops, traceroute.Hop{
			Addr: netip.MustParseAddr(h), ProbeTTL: uint8(i + 1),
			Reply: traceroute.TimeExceeded,
		})
	}
	return t
}

const rib = "1.0.0.0/24|9 100\n2.0.0.0/24|9 200\n"

// TestFarHalf: interface in A space followed by B internals is on B's
// router (the in-addressed ingress of B's border).
func TestFarHalf(t *testing.T) {
	r := resolver(t, rib)
	traces := []*traceroute.Trace{
		trace("1.0.0.1", "1.0.0.9", "2.0.0.1", "2.0.0.2"),
		trace("1.0.0.2", "1.0.0.9", "2.0.0.1", "2.0.0.3"),
	}
	res := Infer(traces, r, Options{})
	if got := res.OperatorOf(netip.MustParseAddr("1.0.0.9")); got != 200 {
		t.Errorf("operator(1.0.0.9) = %v, want 200", got)
	}
	if got := res.ConnectedAS(netip.MustParseAddr("1.0.0.9")); got != 100 {
		t.Errorf("farSide(1.0.0.9) = %v, want 100", got)
	}
	if got := res.OperatorOf(netip.MustParseAddr("2.0.0.1")); got != 200 {
		t.Errorf("internal interface flipped: %v", got)
	}
}

// TestNearHalf: an interface in A space whose predecessors sit on B's
// routers (reverse-direction traffic into A) is A's border facing B.
// The predecessor keeps its B identity because it also fans into B's
// own space elsewhere.
func TestNearHalf(t *testing.T) {
	r := resolver(t, rib)
	traces := []*traceroute.Trace{
		trace("2.0.0.1", "2.0.0.2", "1.0.0.9", "1.0.0.1"),
		trace("2.0.0.3", "2.0.0.2", "1.0.0.9", "1.0.0.4"),
		// Anchor 2.0.0.2 inside B: it also forwards within B's space.
		trace("2.0.0.6", "2.0.0.2", "2.0.0.5"),
	}
	res := Infer(traces, r, Options{})
	if got := res.OperatorOf(netip.MustParseAddr("1.0.0.9")); got != 100 {
		t.Errorf("operator(1.0.0.9) = %v, want 100", got)
	}
	if got := res.ConnectedAS(netip.MustParseAddr("1.0.0.9")); got != 200 {
		t.Errorf("farSide(1.0.0.9) = %v, want 200", got)
	}
}

// TestFanOutGuard: an egress interface fanning into several ASes,
// including its own, is never flipped.
func TestFanOutGuard(t *testing.T) {
	r := resolver(t, rib+"3.0.0.0/24|9 300\n")
	traces := []*traceroute.Trace{
		trace("1.0.0.9", "2.0.0.1"),
		trace("1.0.0.9", "3.0.0.1"),
		trace("1.0.0.9", "1.0.0.5"),
	}
	res := Infer(traces, r, Options{})
	if got := res.OperatorOf(netip.MustParseAddr("1.0.0.9")); got != 100 {
		t.Errorf("fanning interface flipped to %v", got)
	}
}

// TestLastHopBlindness documents MAP-IT's known gap: a customer border
// using provider space with no subsequent hops is missed (the bdrmapIT
// paper's core motivation for the §5 heuristic).
func TestLastHopBlindness(t *testing.T) {
	r := resolver(t, rib)
	traces := []*traceroute.Trace{
		trace("1.0.0.1", "1.0.0.2", "1.0.0.9"), // ends at customer border in A space
	}
	res := Infer(traces, r, Options{})
	if got := res.OperatorOf(netip.MustParseAddr("1.0.0.9")); got != 100 {
		t.Errorf("MAP-IT should fall back to the origin, got %v", got)
	}
	if got := res.ConnectedAS(netip.MustParseAddr("1.0.0.9")); got != 0 {
		t.Errorf("no link should be inferred, got %v", got)
	}
}

func TestIterationsReported(t *testing.T) {
	r := resolver(t, rib)
	res := Infer([]*traceroute.Trace{trace("1.0.0.1", "2.0.0.1")}, r, Options{})
	if res.Iterations < 1 {
		t.Errorf("iterations = %d", res.Iterations)
	}
	if got := res.InterdomainInterfaces(); len(got) == 0 {
		t.Log("no interdomain interfaces on the tiny input (acceptable)")
	}
}

func TestGapsDoNotLink(t *testing.T) {
	r := resolver(t, rib)
	tr := &traceroute.Trace{Dst: netip.MustParseAddr("9.9.9.9")}
	tr.Hops = []traceroute.Hop{
		{Addr: netip.MustParseAddr("1.0.0.9"), ProbeTTL: 1, Reply: traceroute.TimeExceeded},
		{Addr: netip.MustParseAddr("2.0.0.1"), ProbeTTL: 3, Reply: traceroute.TimeExceeded},
	}
	res := Infer([]*traceroute.Trace{tr, tr}, r, Options{})
	// MAP-IT bridges no gaps: no neighbour evidence, no flip.
	if got := res.OperatorOf(netip.MustParseAddr("1.0.0.9")); got != 100 {
		t.Errorf("gap created an inference: %v", got)
	}
}
