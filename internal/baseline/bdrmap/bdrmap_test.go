package bdrmap

import (
	"net/netip"
	"strings"
	"testing"

	"repro/internal/alias"
	"repro/internal/asrel"
	"repro/internal/bgp"
	"repro/internal/ip2as"
	"repro/internal/ixp"
	"repro/internal/traceroute"
)

// The scenario: VP network AS100 (space 1.0.0.0/24) with
//   - customer AS200 (2.0.0.0/24) over a provider-numbered link,
//   - firewalled customer AS300 (3.0.0.0/24) that drops probes past its
//     border (which replies with a 100-space address),
//   - a peer AS400 met at an IXP (11.0.0.0/24).
func buildScenario(t *testing.T) ([]*traceroute.Trace, *ip2as.Resolver, *asrel.Graph) {
	t.Helper()
	routes, err := bgp.ReadRoutes(strings.NewReader(
		"1.0.0.0/24|9 100\n2.0.0.0/24|9 200\n3.0.0.0/24|9 300\n4.0.0.0/24|9 400\n"))
	if err != nil {
		t.Fatal(err)
	}
	ixps := ixp.NewSet()
	ixps.Add(netip.MustParsePrefix("11.0.0.0/24"))
	resolver := &ip2as.Resolver{Table: bgp.NewTable(routes), IXPs: ixps}
	rels := asrel.New()
	rels.AddP2C(100, 200)
	rels.AddP2C(100, 300)
	rels.AddP2P(100, 400)

	mk := func(dst string, hops ...string) *traceroute.Trace {
		tr := &traceroute.Trace{Dst: netip.MustParseAddr(dst), VP: "vp-100"}
		for i, h := range hops {
			reply := traceroute.TimeExceeded
			if strings.HasSuffix(h, "/e") {
				reply = traceroute.EchoReply
				h = strings.TrimSuffix(h, "/e")
			}
			tr.Hops = append(tr.Hops, traceroute.Hop{
				Addr: netip.MustParseAddr(h), ProbeTTL: uint8(i + 1), Reply: reply,
			})
		}
		return tr
	}
	traces := []*traceroute.Trace{
		// To the plain customer: internal 100 hops, then the customer's
		// ingress (100-space on the provider-numbered link), then inside.
		mk("2.0.0.99", "1.0.0.1", "1.0.0.2", "1.0.0.30", "2.0.0.1", "2.0.0.99/e"),
		mk("2.0.0.98", "1.0.0.1", "1.0.0.2", "1.0.0.30", "2.0.0.2", "2.0.0.98/e"),
		// To the firewalled customer: its border (100-space) is last.
		mk("3.0.0.99", "1.0.0.1", "1.0.0.2", "1.0.0.34"),
		mk("3.0.0.98", "1.0.0.1", "1.0.0.2", "1.0.0.34"),
		// Across the IXP to the peer.
		mk("4.0.0.99", "1.0.0.1", "1.0.0.2", "11.0.0.7", "4.0.0.1", "4.0.0.99/e"),
	}
	return traces, resolver, rels
}

func TestInternalRouters(t *testing.T) {
	traces, resolver, rels := buildScenario(t)
	res := Infer(traces, resolver, alias.NewSets(), rels, Options{VPAS: 100})
	for _, a := range []string{"1.0.0.1", "1.0.0.2"} {
		if got := res.OperatorOf(netip.MustParseAddr(a)); got != 100 {
			t.Errorf("internal router %s = %v, want 100", a, got)
		}
	}
}

func TestCustomerBorderProviderAddressed(t *testing.T) {
	traces, resolver, rels := buildScenario(t)
	res := Infer(traces, resolver, alias.NewSets(), rels, Options{VPAS: 100})
	// 1.0.0.30 is the customer's ingress: its onward hops are in 200.
	if got := res.OperatorOf(netip.MustParseAddr("1.0.0.30")); got != 200 {
		t.Errorf("customer ingress = %v, want 200", got)
	}
}

func TestFirewalledCustomer(t *testing.T) {
	traces, resolver, rels := buildScenario(t)
	res := Infer(traces, resolver, alias.NewSets(), rels, Options{VPAS: 100})
	// 1.0.0.34 has no onward links; destinations identify AS300.
	if got := res.OperatorOf(netip.MustParseAddr("1.0.0.34")); got != 300 {
		t.Errorf("firewalled border = %v, want 300", got)
	}
}

func TestIXPPeer(t *testing.T) {
	traces, resolver, rels := buildScenario(t)
	res := Infer(traces, resolver, alias.NewSets(), rels, Options{VPAS: 100})
	if got := res.OperatorOf(netip.MustParseAddr("11.0.0.7")); got != 400 {
		t.Errorf("IXP peer router = %v, want 400", got)
	}
}

func TestNeighbors(t *testing.T) {
	traces, resolver, rels := buildScenario(t)
	res := Infer(traces, resolver, alias.NewSets(), rels, Options{VPAS: 100})
	got := res.Neighbors()
	want := map[uint32]bool{200: true, 300: true, 400: true}
	for _, n := range got {
		delete(want, uint32(n))
	}
	if len(want) != 0 {
		t.Errorf("missing neighbors %v (got %v)", want, got)
	}
}
