// Package bdrmap reimplements the inference component of the bdrmap
// comparator (Luckie et al., IMC 2016): mapping the borders of a single
// vantage-point network from targeted traceroutes, alias resolution,
// and AS relationships. bdrmapIT's regression evaluation (paper §7.1,
// Fig. 15) feeds both tools the same single-VP data.
//
// The heuristics implemented here are the ones the bdrmapIT paper
// credits to bdrmap: internal-router identification by position before
// VP-announced address space, relationship-constrained origin voting at
// the first border, third-party reply handling, and destination-based
// annotation of firewalled or unrouted edges. bdrmap does not map past
// the first AS boundary and has no hidden-AS or reallocated-prefix
// machinery — the gaps bdrmapIT closes.
package bdrmap

import (
	"net/netip"

	"repro/internal/alias"
	"repro/internal/asn"
	"repro/internal/core"
	"repro/internal/ip2as"
	"repro/internal/netutil"
	"repro/internal/traceroute"
)

// Options configures a run.
type Options struct {
	// VPAS is the vantage point's network: the AS whose borders are
	// mapped.
	VPAS asn.ASN
}

// Result maps router ownership at the VP network's border.
type Result struct {
	graph *core.Graph
	vpAS  asn.ASN
}

// OperatorOf returns the inferred operator of the router using addr.
// Routers beyond bdrmap's problem domain (past the first boundary)
// return asn.None.
func (r *Result) OperatorOf(addr netip.Addr) asn.ASN {
	i, ok := r.graph.Interfaces[addr]
	if !ok {
		return asn.None
	}
	return i.Router.Annotation
}

// Neighbors returns the ASes inferred to interconnect with the VP
// network.
func (r *Result) Neighbors() []asn.ASN {
	s := asn.NewSet()
	for _, rt := range r.graph.Routers {
		if rt.Annotation != asn.None && rt.Annotation != r.vpAS {
			s.Add(rt.Annotation)
		}
	}
	return s.Sorted()
}

// Infer runs bdrmap over a single-VP trace archive.
func Infer(traces []*traceroute.Trace, resolver *ip2as.Resolver,
	aliases *alias.Sets, rels core.RelationshipOracle, opts Options) *Result {

	b := core.NewBuilder(resolver, aliases)
	for _, t := range traces {
		b.AddTrace(t)
	}
	g := b.Finish(rels)
	res := &Result{graph: g, vpAS: opts.VPAS}

	// Step 1: routers internal to the VP network — any router observed
	// strictly before an interface announced by the VP network. The
	// router replying with the last VP-announced address itself is NOT
	// internal: on a provider-numbered interdomain link that reply
	// comes from the neighbour's ingress.
	internal := make(map[*core.Router]bool)
	borderCandidates := make(map[*core.Router]bool)
	for _, t := range traces {
		hops := responsive(t)
		lastVP := -1
		for i, h := range hops {
			if resolver.Lookup(h.Addr).Origin == opts.VPAS {
				lastVP = i
			}
		}
		if lastVP == -1 {
			continue // path never showed VP address space
		}
		for i := 0; i < lastVP; i++ {
			if iface, ok := g.Interfaces[hops[i].Addr]; ok {
				internal[iface.Router] = true
			}
		}
		// Border candidates: the last VP-announced router (VP egress or
		// neighbour ingress) and the router immediately after it.
		for _, idx := range []int{lastVP, lastVP + 1} {
			if idx < len(hops) {
				if iface, ok := g.Interfaces[hops[idx].Addr]; ok {
					borderCandidates[iface.Router] = true
				}
			}
		}
	}
	for r := range internal {
		r.Annotation = opts.VPAS
	}
	for _, r := range g.Routers {
		if !borderCandidates[r] || internal[r] {
			continue
		}
		r.Annotation = annotateBorder(r, rels, opts.VPAS)
	}
	return res
}

func responsive(t *traceroute.Trace) []traceroute.Hop {
	out := make([]traceroute.Hop, 0, len(t.Hops))
	for _, h := range t.Hops {
		if !netutil.IsSpecial(h.Addr) {
			out = append(out, h)
		}
	}
	return out
}

// annotateBorder infers the operator of one border-candidate router: a
// router at the first boundary, operated either by the VP network or by
// a directly connected neighbour.
func annotateBorder(r *core.Router, rels core.RelationshipOracle, vp asn.ASN) asn.ASN {
	vpOnly := true
	hasIXP := false
	for _, i := range r.Interfaces {
		if i.Kind == ip2as.IXP {
			hasIXP = true
		}
		if i.Origin != asn.None && i.Origin != vp {
			vpOnly = false
			break
		}
	}

	if hasIXP && r.OriginSet.Len() == 0 {
		// A router observed only by its public peering LAN address was
		// reached across the exchange and belongs to the peer: the next
		// hops reveal whose network the probe entered. bdrmap discovers
		// peers at IXPs without requiring a previously known
		// relationship. (A router that also exposes VP address space is
		// the VP's own port and is handled below.)
		fwd := make(asn.Counter)
		for _, l := range r.SortedLinks() {
			if o := l.To.Origin; o != asn.None && o != vp {
				fwd.Inc(o, 1)
			}
		}
		if top, _ := fwd.Max(); len(top) > 0 {
			return rels.SmallestCone(top)
		}
		return asn.None
	}

	if !vpOnly {
		// The router exposes foreign address space: vote among its
		// interface origins, constrained to ASes with a relationship to
		// the VP network.
		votes := make(asn.Counter)
		for _, i := range r.Interfaces {
			if i.Origin == asn.None || i.Kind == ip2as.IXP || i.Origin == vp {
				continue
			}
			if rels.HasRelationship(vp, i.Origin) {
				votes.Inc(i.Origin, 1)
			}
		}
		if top, _ := votes.Max(); len(top) > 0 {
			return rels.SmallestCone(top)
		}
	}

	// Every interface is in VP space (the common provider-numbered
	// transit link). Look at where the router forwards next: a
	// neighbour's ingress reveals the neighbour's space one hop on. A
	// clear majority is required — the VP's own egress borders also fan
	// out to neighbours.
	fwd := make(asn.Counter)
	for _, l := range r.SortedLinks() {
		if o := l.To.Origin; o != asn.None && o != vp {
			fwd.Inc(o, 1)
		}
	}
	if top, n := fwd.Max(); len(top) > 0 && n*2 > len(r.Links) {
		return rels.SmallestCone(top)
	}

	// Firewalled edges and unrouted reply addresses: the destinations
	// probed through this router identify the owner (bdrmap's reactive
	// probing of every routed prefix makes the destination set dense).
	if len(r.Links) == 0 && r.DestASes.Len() > 0 {
		dests := r.DestASes.Sorted()
		if len(dests) == 1 {
			return dests[0]
		}
		// Prefer a destination that is a customer of the VP network.
		var custs []asn.ASN
		for _, d := range dests {
			if rels.IsProvider(vp, d) {
				custs = append(custs, d)
			}
		}
		if len(custs) > 0 {
			return rels.SmallestCone(custs)
		}
		return rels.SmallestCone(dests)
	}

	// No foreign evidence: a subsequent router is operated by the VP
	// network or a neighbour; default to the VP network.
	if vpOnly {
		return vp
	}
	all := make(asn.Counter)
	for _, i := range r.Interfaces {
		if i.Origin != asn.None {
			all.Inc(i.Origin, 1)
		}
	}
	top, _ := all.Max()
	return rels.SmallestCone(top)
}
