package serve

import (
	"sync/atomic"

	"repro/internal/obs"
)

// AdmitLevel is the admission controller's verdict for one request.
type AdmitLevel int

const (
	// Admit serves the request at full service.
	Admit AdmitLevel = iota
	// Degrade serves the request, but expensive query classes should
	// answer from the cheap ip2as prefix table only — the middle rung
	// of the degradation ladder, taken when the in-flight population
	// crosses the soft budget.
	Degrade
	// Shed rejects the request with 503 + Retry-After: the hard
	// in-flight budget is exhausted and finishing the requests already
	// admitted matters more than admitting this one.
	Shed
)

// admission is a bounded in-flight budget with a soft degradation
// threshold. It is deliberately memoryless — no queues, no token
// refill schedule — because the failure mode it exists to prevent is
// latency collapse under overload: a queue converts overload into
// unbounded latency; a hard budget converts it into fast, honest 503s
// that a client can back off from.
type admission struct {
	// soft and max are the degradation and rejection thresholds on the
	// in-flight request population.
	soft, max int64

	inflight atomic.Int64

	// gauges/counters exporting the controller's behaviour.
	inflightG *obs.Gauge
	shed      *obs.Counter
	degraded  *obs.Counter
}

// newAdmission sizes the controller. max <= 0 disables shedding
// entirely (an explicit operator choice, not a default); soft <= 0
// defaults to half of max.
func newAdmission(soft, max int64, rec *obs.Recorder) *admission {
	if soft <= 0 {
		soft = max / 2
	}
	return &admission{
		soft:      soft,
		max:       max,
		inflightG: rec.Gauge("serve.inflight"),
		shed:      rec.Counter("serve.shed"),
		degraded:  rec.Counter("serve.degraded"),
	}
}

// acquire admits, degrades, or sheds one request. When the verdict is
// Admit or Degrade the caller must invoke release exactly once when the
// request finishes; on Shed release is nil.
func (a *admission) acquire() (AdmitLevel, func()) {
	n := a.inflight.Add(1)
	a.inflightG.Set(n)
	if a.max > 0 && n > a.max {
		// Over the hard budget: undo the reservation and shed. The
		// admitted population stays bounded, so per-request memory and
		// tail latency stay bounded with it.
		a.inflight.Add(-1)
		a.shed.Inc()
		return Shed, nil
	}
	release := func() {
		a.inflightG.Set(a.inflight.Add(-1))
	}
	if a.max > 0 && n > a.soft {
		a.degraded.Inc()
		return Degrade, release
	}
	return Admit, release
}
