package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"
)

// getJSON fetches url and decodes the JSON body, returning the status
// code alongside.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decoding %s: %v\nbody: %s", url, err, body)
		}
	}
	return resp.StatusCode
}

func TestHotSwapAndRollback(t *testing.T) {
	dir := t.TempDir()
	path, _ := writeSnapshot(t, dir, 1)
	srv := New(Config{SnapshotPath: path})
	if err := srv.Load(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var before struct {
		ConnAS     uint32 `json:"connected_as"`
		Generation uint64 `json:"generation"`
	}
	if code := getJSON(t, ts.URL+"/v1/lookup?ip=10.0.0.1", &before); code != http.StatusOK {
		t.Fatalf("lookup status %d", code)
	}
	if before.Generation != 1 || before.ConnAS != 301 {
		t.Fatalf("initial answer %+v, want generation 1, connAS 301", before)
	}

	// Replace the artifact and swap: same address, new answer, new
	// generation.
	if err := os.WriteFile(path, encodeSnapshot(t, 50), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Reload(); err != nil {
		t.Fatal(err)
	}
	var after struct {
		ConnAS     uint32 `json:"connected_as"`
		Generation uint64 `json:"generation"`
	}
	getJSON(t, ts.URL+"/v1/lookup?ip=10.0.0.1", &after)
	if after.Generation != 2 || after.ConnAS != 350 {
		t.Fatalf("post-swap answer %+v, want generation 2, connAS 350", after)
	}

	// Force the post-swap self-check to fail: the pointer must roll
	// back to the generation that was serving, and keep serving it.
	SwapCheckHook = func(*Snapshot) error { return &ValidationError{Reason: "forced by test"} }
	defer func() { SwapCheckHook = nil }()
	if err := os.WriteFile(path, encodeSnapshot(t, 99), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := srv.Reload()
	if err == nil {
		t.Fatal("Reload succeeded despite failing post-swap self-check")
	}
	var rolled struct {
		ConnAS     uint32 `json:"connected_as"`
		Generation uint64 `json:"generation"`
	}
	getJSON(t, ts.URL+"/v1/lookup?ip=10.0.0.1", &rolled)
	if rolled.Generation != after.Generation || rolled.ConnAS != after.ConnAS {
		t.Fatalf("rollback did not restore the serving snapshot: %+v, want %+v", rolled, after)
	}
}

func TestReloadEndpointAndProbes(t *testing.T) {
	dir := t.TempDir()
	path, _ := writeSnapshot(t, dir, 1)
	srv := New(Config{SnapshotPath: path})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Before Load: alive but not ready, and lookups answer 503.
	if code := getJSON(t, ts.URL+"/-/healthy", nil); code != http.StatusOK {
		t.Errorf("healthy before load: %d", code)
	}
	if code := getJSON(t, ts.URL+"/-/ready", nil); code != http.StatusServiceUnavailable {
		t.Errorf("ready before load: %d, want 503", code)
	}
	if code := getJSON(t, ts.URL+"/v1/lookup?ip=10.0.0.1", nil); code != http.StatusServiceUnavailable {
		t.Errorf("lookup before load: %d, want 503", code)
	}

	if err := srv.Load(); err != nil {
		t.Fatal(err)
	}
	if code := getJSON(t, ts.URL+"/-/ready", nil); code != http.StatusOK {
		t.Errorf("ready after load: %d", code)
	}

	// Reload via the admin endpoint.
	if err := os.WriteFile(path, encodeSnapshot(t, 2), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/-/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d", resp.StatusCode)
	}
	if gen, _ := srv.Generation(); gen != 2 {
		t.Errorf("generation after endpoint reload = %d, want 2", gen)
	}

	// A corrupt artifact through the endpoint: 409, old keeps serving.
	if err := os.WriteFile(path, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/-/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("corrupt reload status %d, want 409", resp.StatusCode)
	}
	if gen, _ := srv.Generation(); gen != 2 {
		t.Errorf("generation disturbed by refused endpoint reload: %d", gen)
	}

	// Bad queries are 400s, not 500s.
	if code := getJSON(t, ts.URL+"/v1/lookup", nil); code != http.StatusBadRequest {
		t.Errorf("missing ip param: %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/v1/lookup?ip=not-an-ip", nil); code != http.StatusBadRequest {
		t.Errorf("malformed ip param: %d, want 400", code)
	}

	// Drain: ready flips to 503, API keeps answering.
	srv.StartDrain()
	if code := getJSON(t, ts.URL+"/-/ready", nil); code != http.StatusServiceUnavailable {
		t.Errorf("ready while draining: %d, want 503", code)
	}
	if code := getJSON(t, ts.URL+"/v1/lookup?ip=10.0.0.1", nil); code != http.StatusOK {
		t.Errorf("lookup while draining: %d, want 200 (drain serves in-flight work)", code)
	}
}

func TestAdmissionDegradeAndShed(t *testing.T) {
	dir := t.TempDir()
	path, _ := writeSnapshot(t, dir, 1)
	srv := New(Config{SnapshotPath: path, MaxInflight: 4, SoftInflight: 2})
	if err := srv.Load(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Occupy the admission budget directly (white box): two held slots
	// put the next request over the soft threshold, four put it over the
	// hard one.
	var releases []func()
	hold := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			level, release := srv.adm.acquire()
			if level == Shed {
				t.Fatalf("setup slot %d was shed", i)
			}
			releases = append(releases, release)
		}
	}
	releaseAll := func() {
		for _, r := range releases {
			r()
		}
		releases = nil
	}
	defer releaseAll()

	hold(2)
	var degraded struct {
		Found    bool   `json:"found"`
		Degraded bool   `json:"degraded"`
		OriginAS uint32 `json:"origin_as"`
	}
	if code := getJSON(t, ts.URL+"/v1/lookup?ip=10.0.0.1", &degraded); code != http.StatusOK {
		t.Fatalf("lookup over soft threshold: status %d", code)
	}
	if !degraded.Degraded || !degraded.Found || degraded.OriginAS != 7018 {
		t.Errorf("over the soft threshold got %+v, want a degraded prefix-table answer (origin 7018)", degraded)
	}
	// The cheap class stays full-service while degraded.
	var ip2as struct {
		Found    bool   `json:"found"`
		OriginAS uint32 `json:"origin_as"`
	}
	if code := getJSON(t, ts.URL+"/v1/ip2as?ip=10.0.0.1", &ip2as); code != http.StatusOK || !ip2as.Found {
		t.Errorf("ip2as over soft threshold: status %d, %+v", code, ip2as)
	}

	hold(2) // now 4 in flight: the next request exceeds the hard budget
	resp, err := http.Get(ts.URL + "/v1/lookup?ip=10.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over the hard budget: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response has no Retry-After header")
	}
	// Probes bypass admission: they must answer while overloaded.
	if code := getJSON(t, ts.URL+"/-/healthy", nil); code != http.StatusOK {
		t.Errorf("healthy while overloaded: %d", code)
	}

	releaseAll()
	var recovered struct {
		Degraded bool `json:"degraded"`
		Found    bool `json:"found"`
	}
	if code := getJSON(t, ts.URL+"/v1/lookup?ip=10.0.0.1", &recovered); code != http.StatusOK {
		t.Fatalf("lookup after recovery: status %d", code)
	}
	if recovered.Degraded || !recovered.Found {
		t.Errorf("after releasing the budget got %+v, want a full-service answer", recovered)
	}
}

func TestPanicRecovery(t *testing.T) {
	dir := t.TempDir()
	path, _ := writeSnapshot(t, dir, 1)
	srv := New(Config{SnapshotPath: path})
	if err := srv.Load(); err != nil {
		t.Fatal(err)
	}

	mux := http.NewServeMux()
	mux.Handle("/panic", srv.api("lookup", func(http.ResponseWriter, *http.Request, AdmitLevel) {
		panic("poisoned request")
	}))
	mux.Handle("/", srv.Handler())
	ts := httptest.NewServer(mux)
	defer ts.Close()

	for i := 0; i < 3; i++ {
		if code := getJSON(t, ts.URL+"/panic", nil); code != http.StatusInternalServerError {
			t.Fatalf("panic request %d: status %d, want 500", i, code)
		}
	}
	// The process survived and the admission budget was not leaked by
	// the panicking requests: normal service continues.
	if code := getJSON(t, ts.URL+"/v1/lookup?ip=10.0.0.1", nil); code != http.StatusOK {
		t.Errorf("lookup after panics: status %d", code)
	}
}

func TestRequestDeadline(t *testing.T) {
	dir := t.TempDir()
	path, _ := writeSnapshot(t, dir, 1)
	srv := New(Config{SnapshotPath: path, RequestTimeout: time.Nanosecond})
	if err := srv.Load(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A deadline that expires before the handler reaches its answer
	// turns into an honest 503, not a stale success.
	time.Sleep(time.Millisecond)
	if code := getJSON(t, ts.URL+"/v1/lookup?ip=10.0.0.1", nil); code != http.StatusServiceUnavailable {
		t.Errorf("expired deadline: status %d, want 503", code)
	}
}
