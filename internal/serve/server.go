package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Config sizes one Server. The zero value is usable with defaults
// noted per field; only SnapshotPath is required.
type Config struct {
	// SnapshotPath is the serving-snapshot artifact the server loads at
	// startup and re-opens on every reload request. Producers replace
	// the file atomically (serve.WriteFile), so a reload mid-publish
	// sees either the old or the new complete artifact.
	SnapshotPath string
	// RequestTimeout is the per-request deadline attached to every API
	// request's context (default 5s). A request that outlives it is
	// answered 503.
	RequestTimeout time.Duration
	// MaxInflight is the hard admission budget: requests beyond this
	// many concurrently in flight are shed with 503 + Retry-After
	// (default 256; negative disables shedding).
	MaxInflight int
	// SoftInflight is the degradation threshold: above it, expensive
	// query classes answer from the prefix table only (default
	// MaxInflight/2).
	SoftInflight int
	// RetryAfter is the Retry-After hint attached to shed responses
	// (default 1s, rounded up to whole seconds).
	RetryAfter time.Duration
	// Recorder receives serving metrics (QPS, per-class latency
	// histograms, shed/degraded/panic counters, swap generation). Nil
	// disables recording.
	Recorder *obs.Recorder
	// HandlerDelay injects artificial per-request latency after
	// admission (cancelled by the request deadline). Lookups answer in
	// microseconds, so real overload pressure never builds in a test;
	// load tests set this to make admission behaviour reproducible.
	// Zero — always, in production — disables it.
	HandlerDelay time.Duration
}

// SwapCheckHook, when non-nil, runs as an extra post-swap self-check
// against the just-published snapshot; returning an error forces the
// rollback path. Tests use it to prove rollback works; production
// never sets it.
var SwapCheckHook func(*Snapshot) error

// generation pairs a published snapshot with its monotonically
// increasing swap generation. The pair travels as one pointer so a
// request observes a consistent (snapshot, generation) — never a new
// snapshot with an old generation number or vice versa.
type generation struct {
	snap *Snapshot
	gen  uint64
}

// Server serves annotation lookups from an atomically swappable
// snapshot. Construct with New, publish the first snapshot with Load,
// mount Handler on an http.Server (obs.NewServer hardens one), and
// call Reload on SIGHUP or the /-/reload endpoint.
type Server struct {
	cfg Config
	rec *obs.Recorder
	adm *admission

	cur      atomic.Pointer[generation]
	genSeq   atomic.Uint64
	draining atomic.Bool

	// reloadMu serializes Load/Reload so two concurrent reloads cannot
	// interleave their swap/rollback sequences.
	reloadMu sync.Mutex

	requests     *obs.Counter
	panics       *obs.Counter
	notFound     *obs.Counter
	deadline     *obs.Counter
	swaps        *obs.Counter
	swapRefused  *obs.Counter
	swapRollback *obs.Counter
	genGauge     *obs.Gauge
	latency      map[string]*obs.Histogram
}

// New returns an unstarted Server; call Load before serving (Ready
// reports false until a snapshot is published).
func New(cfg Config) *Server {
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 5 * time.Second
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = 256
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	rec := cfg.Recorder
	s := &Server{
		cfg:          cfg,
		rec:          rec,
		adm:          newAdmission(int64(cfg.SoftInflight), int64(cfg.MaxInflight), rec),
		requests:     rec.Counter("serve.requests"),
		panics:       rec.Counter("serve.panics"),
		notFound:     rec.Counter("serve.not_found"),
		deadline:     rec.Counter("serve.deadline_exceeded"),
		swaps:        rec.Counter("serve.swaps"),
		swapRefused:  rec.Counter("serve.swap_refused"),
		swapRollback: rec.Counter("serve.swap_rollback"),
		genGauge:     rec.Gauge("serve.generation"),
		latency: map[string]*obs.Histogram{
			classLookup: rec.Histogram("serve.latency_ns.lookup"),
			classIP2AS:  rec.Histogram("serve.latency_ns.ip2as"),
			classLink:   rec.Histogram("serve.latency_ns.link"),
		},
	}
	return s
}

// Load opens, validates, and publishes the configured snapshot for the
// first time. It fails — and the server stays NotReady — rather than
// serving anything unvalidated.
func (s *Server) Load() error {
	_, err := s.swapFromPath()
	return err
}

// Reload re-opens the configured snapshot path and hot-swaps it in.
// On any failure — unreadable file, corrupt artifact, fingerprint
// mismatch, failed self-check, failed post-swap check — the previously
// published snapshot keeps serving untouched and the error reports
// why. On success it returns the new generation.
func (s *Server) Reload() (uint64, error) {
	return s.swapFromPath()
}

func (s *Server) swapFromPath() (uint64, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	snap, err := Open(s.cfg.SnapshotPath)
	if err != nil {
		s.swapRefused.Inc()
		s.rec.Warnf("serve: refusing snapshot swap: %v", err)
		return 0, err
	}
	old := s.cur.Load()
	gen := s.genSeq.Add(1)
	s.cur.Store(&generation{snap: snap, gen: gen})
	// Post-swap self-check through the published pointer: the snapshot
	// must answer correctly from where requests will actually read it.
	if err := s.postSwapCheck(snap); err != nil {
		s.cur.Store(old)
		s.swapRollback.Inc()
		oldGen := uint64(0)
		if old != nil {
			oldGen = old.gen
		}
		s.rec.Warnf("serve: post-swap self-check failed, rolled back to generation %d: %v", oldGen, err)
		return 0, fmt.Errorf("serve: post-swap self-check failed (rolled back to generation %d): %w", oldGen, err)
	}
	s.genGauge.Set(int64(gen))
	s.swaps.Inc()
	s.rec.Logf("serve: published snapshot generation %d (fingerprint %#x, %d interfaces, %d routers)",
		gen, snap.Fingerprint(), len(snap.Ifaces), len(snap.Routers))
	return gen, nil
}

func (s *Server) postSwapCheck(snap *Snapshot) error {
	pub := s.cur.Load()
	if pub == nil || pub.snap != snap {
		return errors.New("published pointer does not hold the new snapshot")
	}
	if err := pub.snap.SelfCheck(); err != nil {
		return err
	}
	if SwapCheckHook != nil {
		return SwapCheckHook(pub.snap)
	}
	return nil
}

// Generation returns the published snapshot's swap generation and
// fingerprint (0, 0 before Load succeeds).
func (s *Server) Generation() (gen, fingerprint uint64) {
	pub := s.cur.Load()
	if pub == nil {
		return 0, 0
	}
	return pub.gen, pub.snap.Fingerprint()
}

// StartDrain flips the server NotReady so load balancers and probes
// stop sending new work; in-flight and still-arriving requests keep
// being answered until the caller shuts the http.Server down. Part of
// the graceful-shutdown sequence, not a kill switch.
func (s *Server) StartDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.rec.Logf("serve: draining (ready probe now failing)")
	}
}

// Query classes, used as metric keys and degradation units.
const (
	classLookup = "lookup"
	classIP2AS  = "ip2as"
	classLink   = "link"
)

// Handler returns the daemon's HTTP API:
//
//	GET  /v1/lookup?ip=A  full answer: router, operator AS, connected AS
//	GET  /v1/ip2as?ip=A   cheap answer: longest-prefix origin from the
//	                      run's ip2as view
//	GET  /v1/link?ip=A    is A the far side of an interdomain link?
//	GET  /-/healthy       process liveness (200 while the process runs)
//	GET  /-/ready         readiness: snapshot published and not draining
//	POST /-/reload        hot-swap the snapshot path; refusals keep the
//	                      old snapshot serving and report 409
//
// All /v1/ routes run under admission control, a per-request deadline,
// panic recovery, and latency/QPS metrics. Probes and reload bypass
// admission (they must answer while overloaded) but keep panic
// recovery.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /v1/lookup", s.api(classLookup, s.handleLookup))
	mux.Handle("GET /v1/ip2as", s.api(classIP2AS, s.handleIP2AS))
	mux.Handle("GET /v1/link", s.api(classLink, s.handleLink))
	mux.Handle("GET /-/healthy", s.recovered(s.handleHealthy))
	mux.Handle("GET /-/ready", s.recovered(s.handleReady))
	mux.Handle("POST /-/reload", s.recovered(s.handleReload))
	return mux
}

// api wraps an API handler with the full robustness stack, outermost
// first: panic recovery (a handler panic must not kill the admission
// accounting either), admission control, the per-request deadline, and
// latency metrics.
func (s *Server) api(class string, h func(w http.ResponseWriter, r *http.Request, level AdmitLevel)) http.Handler {
	hist := s.latency[class]
	return s.recovered(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Inc()
		level, release := s.adm.acquire()
		if level == Shed {
			w.Header().Set("Retry-After", fmt.Sprintf("%d", int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
			http.Error(w, "overloaded: in-flight budget exhausted, retry later", http.StatusServiceUnavailable)
			return
		}
		defer release()

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
		if s.cfg.HandlerDelay > 0 {
			select {
			case <-time.After(s.cfg.HandlerDelay):
			case <-ctx.Done():
			}
		}

		start := time.Now()
		h(w, r, level)
		if hist != nil {
			hist.Observe(time.Since(start).Nanoseconds())
		}
	})
}

// recovered converts a handler panic into a 500 and a counter bump
// instead of a dead process: one poisoned request must cost one
// response, never the daemon.
func (s *Server) recovered(h func(w http.ResponseWriter, r *http.Request)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.panics.Inc()
				s.rec.Warnf("serve: handler panic on %s: %v", r.URL.Path, v)
				// Best effort: if the handler already started the
				// response this write is a no-op on the status line.
				http.Error(w, "internal error", http.StatusInternalServerError)
			}
		}()
		h(w, r)
	})
}

// published returns the current generation, or answers 503 and returns
// nil when no snapshot is live (the window before a successful Load).
func (s *Server) published(w http.ResponseWriter) *generation {
	pub := s.cur.Load()
	if pub == nil {
		http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
	}
	return pub
}

// queryAddr parses the ip= query parameter, answering 400 on absence
// or malformation. The second return is false when a response was
// already written.
func (s *Server) queryAddr(w http.ResponseWriter, r *http.Request) (netip.Addr, bool) {
	raw := r.URL.Query().Get("ip")
	if raw == "" {
		http.Error(w, "missing ip= query parameter", http.StatusBadRequest)
		return netip.Addr{}, false
	}
	addr, err := netip.ParseAddr(raw)
	if err != nil {
		http.Error(w, fmt.Sprintf("ip=%q is not an IP address", raw), http.StatusBadRequest)
		return netip.Addr{}, false
	}
	return addr.Unmap(), true
}

// checkDeadline answers 503 if the request's deadline already expired
// (a request that waited out its budget in kernel queues must not be
// answered as if it were fresh). Returns false when a response was
// written.
func (s *Server) checkDeadline(w http.ResponseWriter, r *http.Request) bool {
	if err := r.Context().Err(); err != nil {
		s.deadline.Inc()
		http.Error(w, "request deadline exceeded", http.StatusServiceUnavailable)
		return false
	}
	return true
}

// lookupResponse is the /v1/lookup answer. Generation and Fingerprint
// identify the snapshot that produced the whole response, so a client
// can prove no response mixes generations.
type lookupResponse struct {
	IP    string `json:"ip"`
	Found bool   `json:"found"`
	// Full-service fields.
	Router   uint32 `json:"router,omitempty"`
	RouterAS uint32 `json:"router_as,omitempty"`
	ConnAS   uint32 `json:"connected_as,omitempty"`
	// Degraded-service fields (ip2as-only answer under load).
	Degraded bool   `json:"degraded,omitempty"`
	OriginAS uint32 `json:"origin_as,omitempty"`
	Prefix   string `json:"prefix,omitempty"`
	Source   string `json:"source,omitempty"`

	Generation  uint64 `json:"generation"`
	Fingerprint string `json:"fingerprint"`
}

func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request, level AdmitLevel) {
	pub := s.published(w)
	if pub == nil {
		return
	}
	addr, ok := s.queryAddr(w, r)
	if !ok || !s.checkDeadline(w, r) {
		return
	}
	resp := lookupResponse{
		IP:          addr.String(),
		Generation:  pub.gen,
		Fingerprint: fmt.Sprintf("%#x", pub.snap.Fingerprint()),
	}
	if level == Degrade {
		// Middle rung of the degradation ladder: answer the cheap
		// prefix-table class instead of rejecting outright.
		resp.Degraded = true
		if p, ok := pub.snap.LookupPrefix(addr); ok {
			resp.Found = true
			resp.OriginAS = p.Origin
			resp.Prefix = p.Prefix.String()
			resp.Source = p.Kind.String()
		} else {
			s.notFound.Inc()
		}
		writeJSON(w, &resp)
		return
	}
	if res, ok := pub.snap.Lookup(addr); ok {
		resp.Found = true
		resp.Router = res.Router
		resp.RouterAS = res.RouterAS
		resp.ConnAS = res.ConnAS
	} else {
		s.notFound.Inc()
	}
	writeJSON(w, &resp)
}

// ip2asResponse is the /v1/ip2as answer — the cheapest query class,
// also the shape degraded lookups take.
type ip2asResponse struct {
	IP          string `json:"ip"`
	Found       bool   `json:"found"`
	OriginAS    uint32 `json:"origin_as,omitempty"`
	Prefix      string `json:"prefix,omitempty"`
	Source      string `json:"source,omitempty"`
	Generation  uint64 `json:"generation"`
	Fingerprint string `json:"fingerprint"`
}

func (s *Server) handleIP2AS(w http.ResponseWriter, r *http.Request, _ AdmitLevel) {
	pub := s.published(w)
	if pub == nil {
		return
	}
	addr, ok := s.queryAddr(w, r)
	if !ok || !s.checkDeadline(w, r) {
		return
	}
	resp := ip2asResponse{
		IP:          addr.String(),
		Generation:  pub.gen,
		Fingerprint: fmt.Sprintf("%#x", pub.snap.Fingerprint()),
	}
	if p, ok := pub.snap.LookupPrefix(addr); ok {
		resp.Found = true
		resp.OriginAS = p.Origin
		resp.Prefix = p.Prefix.String()
		resp.Source = p.Kind.String()
	} else {
		s.notFound.Inc()
	}
	writeJSON(w, &resp)
}

// linkResponse is the /v1/link answer.
type linkResponse struct {
	IP          string `json:"ip"`
	Interdomain bool   `json:"interdomain"`
	NearAS      uint32 `json:"near_as,omitempty"`
	FarAS       uint32 `json:"far_as,omitempty"`
	Label       string `json:"label,omitempty"`
	// Degraded is set when the answer came from the prefix table only
	// (the link index was skipped under load): Interdomain is then
	// unknown, not false.
	Degraded    bool   `json:"degraded,omitempty"`
	Generation  uint64 `json:"generation"`
	Fingerprint string `json:"fingerprint"`
}

func (s *Server) handleLink(w http.ResponseWriter, r *http.Request, level AdmitLevel) {
	pub := s.published(w)
	if pub == nil {
		return
	}
	addr, ok := s.queryAddr(w, r)
	if !ok || !s.checkDeadline(w, r) {
		return
	}
	resp := linkResponse{
		IP:          addr.String(),
		Generation:  pub.gen,
		Fingerprint: fmt.Sprintf("%#x", pub.snap.Fingerprint()),
	}
	if level == Degrade {
		resp.Degraded = true
		writeJSON(w, &resp)
		return
	}
	if l, ok := pub.snap.LookupLink(addr); ok {
		resp.Interdomain = true
		resp.NearAS = l.NearAS
		resp.FarAS = l.FarAS
		resp.Label = l.Label
	}
	writeJSON(w, &resp)
}

func (s *Server) handleHealthy(w http.ResponseWriter, _ *http.Request) {
	// Liveness only: the process is up and the handler stack works.
	// Readiness (can this process answer correctly?) is /-/ready.
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	switch {
	case s.draining.Load():
		http.Error(w, "draining", http.StatusServiceUnavailable)
	case s.cur.Load() == nil:
		http.Error(w, "no snapshot published", http.StatusServiceUnavailable)
	default:
		gen, fp := s.Generation()
		writeJSON(w, map[string]any{
			"ready":       true,
			"generation":  gen,
			"fingerprint": fmt.Sprintf("%#x", fp),
		})
	}
}

func (s *Server) handleReload(w http.ResponseWriter, _ *http.Request) {
	gen, err := s.Reload()
	if err != nil {
		// 409: the request conflicted with the artifact's state; the
		// old snapshot keeps serving, which the body says explicitly.
		http.Error(w, fmt.Sprintf("reload refused, previous snapshot still serving: %v", err), http.StatusConflict)
		return
	}
	_, fp := s.Generation()
	writeJSON(w, map[string]any{
		"generation":  gen,
		"fingerprint": fmt.Sprintf("%#x", fp),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	// An encode error here means the client hung up; there is nothing
	// useful to do with it mid-response.
	_ = json.NewEncoder(w).Encode(v)
}
