package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/netip"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// BenchConfig drives one load-generation run against a live daemon.
type BenchConfig struct {
	// BaseURL is the daemon's API root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Clients is the number of concurrent requesters (default 8).
	Clients int
	// Requests is the total request budget across all clients; when 0,
	// Duration bounds the run instead.
	Requests int64
	// Duration bounds the run in wall time when Requests is 0 (default
	// 5s).
	Duration time.Duration
	// ZipfS is the skew of the address-popularity distribution
	// (default 1.2; must be > 1). Real lookup traffic is heavy-tailed,
	// so the bench is too.
	ZipfS float64
	// Seed makes the load mix reproducible.
	Seed int64
	// Addrs is the address population clients draw from. A few
	// guaranteed-miss addresses are worth including: misses exercise a
	// different code path than hits.
	Addrs []netip.Addr
	// Expected maps snapshot fingerprint → the snapshot that responses
	// carrying that fingerprint must agree with. During a hot-swap
	// test both the old and the new snapshot are present, so every
	// response is checkable no matter which side of the swap served
	// it — and a response mixing fields across generations, or
	// carrying an unknown fingerprint, is counted Inconsistent.
	Expected map[uint64]*Snapshot
}

// BenchResult aggregates one run. The invariants a robustness test
// asserts: Failed == 0 and Inconsistent == 0 across a hot swap; Shed >
// 0 when the run deliberately overloads the daemon.
type BenchResult struct {
	Requests     int64 // responses received (any status)
	OK           int64 // 200s that verified against Expected
	Degraded     int64 // 200s answered from the prefix table only
	NotFound     int64 // 200s with found=false that were correct misses
	Shed         int64 // 503s (admission shedding or pre-ready)
	Failed       int64 // transport errors and unexpected statuses
	Inconsistent int64 // 200s contradicting the Expected snapshot

	// Generations is the set of snapshot generations observed in
	// successful responses — a hot-swap run should see at least two.
	Generations map[uint64]int64

	// Latency quantiles over successful responses, in nanoseconds.
	P50, P99 int64
}

func (r *BenchResult) String() string {
	var gens []string
	for g, n := range r.Generations {
		gens = append(gens, fmt.Sprintf("gen%d:%d", g, n))
	}
	sort.Strings(gens)
	return fmt.Sprintf("requests=%d ok=%d degraded=%d notfound=%d shed=%d failed=%d inconsistent=%d p50=%s p99=%s generations=[%s]",
		r.Requests, r.OK, r.Degraded, r.NotFound, r.Shed, r.Failed, r.Inconsistent,
		time.Duration(r.P50), time.Duration(r.P99), strings.Join(gens, " "))
}

// Bench runs the configured load against the daemon and verifies every
// successful response against the Expected snapshots. ctx cancels the
// run early (in-flight requests finish).
func Bench(ctx context.Context, cfg BenchConfig) (*BenchResult, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("serve: Bench needs a BaseURL")
	}
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("serve: Bench needs a non-empty address population")
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.2
	}
	if cfg.Requests <= 0 && cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}

	var deadline context.Context = ctx
	if cfg.Duration > 0 && cfg.Requests <= 0 {
		var cancel context.CancelFunc
		deadline, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	// The request budget is shared: clients draw from one pot so a
	// slow client cannot strand part of the budget.
	remaining := cfg.Requests
	var budgetMu sync.Mutex
	takeTicket := func() bool {
		if cfg.Requests <= 0 {
			return deadline.Err() == nil
		}
		budgetMu.Lock()
		defer budgetMu.Unlock()
		if remaining <= 0 || deadline.Err() != nil {
			return false
		}
		remaining--
		return true
	}

	var (
		mu        sync.Mutex
		total     BenchResult
		latencies []int64
	)
	total.Generations = make(map[uint64]int64)

	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Per-client RNG: same seed → same mix, no shared lock.
			rng := rand.New(rand.NewSource(cfg.Seed + int64(id)*7919))
			zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(cfg.Addrs)-1))
			client := &http.Client{Timeout: 30 * time.Second}
			var local BenchResult
			local.Generations = make(map[uint64]int64)
			var localLat []int64
			for takeTicket() {
				addr := cfg.Addrs[zipf.Uint64()]
				class := pickClass(rng)
				start := time.Now()
				ok := doRequest(deadline, client, cfg, class, addr, &local)
				if ok {
					localLat = append(localLat, time.Since(start).Nanoseconds())
				}
			}
			mu.Lock()
			total.Requests += local.Requests
			total.OK += local.OK
			total.Degraded += local.Degraded
			total.NotFound += local.NotFound
			total.Shed += local.Shed
			total.Failed += local.Failed
			total.Inconsistent += local.Inconsistent
			for g, n := range local.Generations {
				total.Generations[g] += n
			}
			latencies = append(latencies, localLat...)
			mu.Unlock()
		}(c)
	}
	wg.Wait()

	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		total.P50 = latencies[len(latencies)/2]
		total.P99 = latencies[len(latencies)*99/100]
	}
	return &total, nil
}

// pickClass draws the query mix: lookups dominate (they are the
// daemon's reason to exist), with ip2as and link queries mixed in.
func pickClass(rng *rand.Rand) string {
	switch n := rng.Intn(10); {
	case n < 6:
		return classLookup
	case n < 8:
		return classIP2AS
	default:
		return classLink
	}
}

// doRequest issues one query and folds the outcome into local.
// Returns true when the response was a verified success (for latency
// accounting).
func doRequest(ctx context.Context, client *http.Client, cfg BenchConfig, class string, addr netip.Addr, local *BenchResult) bool {
	url := fmt.Sprintf("%s/v1/%s?ip=%s", cfg.BaseURL, class, addr)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		local.Failed++
		return false
	}
	resp, err := client.Do(req)
	if err != nil {
		// Cancellation at end-of-run is the bench stopping, not the
		// daemon failing.
		if ctx.Err() != nil {
			return false
		}
		local.Failed++
		return false
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	closeErr := resp.Body.Close()
	local.Requests++
	if err != nil || closeErr != nil {
		local.Failed++
		return false
	}
	switch resp.StatusCode {
	case http.StatusOK:
		// fall through to verification
	case http.StatusServiceUnavailable:
		local.Shed++
		return false
	default:
		local.Failed++
		return false
	}
	return verifyResponse(cfg, class, addr, body, local)
}

// verifyResponse checks one 200 body against the Expected snapshot
// identified by the response's own fingerprint. Every field the
// response asserts must match what that snapshot would answer; any
// disagreement — including a fingerprint no expected snapshot carries,
// which is what a torn cross-generation response would produce — is
// Inconsistent.
func verifyResponse(cfg BenchConfig, class string, addr netip.Addr, body []byte, local *BenchResult) bool {
	var env struct {
		Found       bool   `json:"found"`
		Router      uint32 `json:"router"`
		RouterAS    uint32 `json:"router_as"`
		ConnAS      uint32 `json:"connected_as"`
		Degraded    bool   `json:"degraded"`
		OriginAS    uint32 `json:"origin_as"`
		Interdomain bool   `json:"interdomain"`
		NearAS      uint32 `json:"near_as"`
		FarAS       uint32 `json:"far_as"`
		Label       string `json:"label"`
		Generation  uint64 `json:"generation"`
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		local.Inconsistent++
		return false
	}
	fp, err := strconv.ParseUint(strings.TrimPrefix(env.Fingerprint, "0x"), 16, 64)
	if err != nil {
		local.Inconsistent++
		return false
	}
	snap := cfg.Expected[fp]
	if snap == nil {
		local.Inconsistent++
		return false
	}
	local.Generations[env.Generation]++

	consistent := true
	switch {
	case env.Degraded:
		// Degraded answers are promised to agree with the prefix
		// table, nothing more.
		if class != classLink {
			p, ok := snap.LookupPrefix(addr)
			if env.Found != ok || (ok && env.OriginAS != p.Origin) {
				consistent = false
			}
		}
		if consistent {
			local.Degraded++
		}
	case class == classLookup:
		res, ok := snap.Lookup(addr)
		if env.Found != ok || (ok && (env.Router != res.Router || env.RouterAS != res.RouterAS || env.ConnAS != res.ConnAS)) {
			consistent = false
		} else if ok {
			local.OK++
		} else {
			local.NotFound++
		}
	case class == classIP2AS:
		p, ok := snap.LookupPrefix(addr)
		if env.Found != ok || (ok && env.OriginAS != p.Origin) {
			consistent = false
		} else if ok {
			local.OK++
		} else {
			local.NotFound++
		}
	case class == classLink:
		l, ok := snap.LookupLink(addr)
		if env.Interdomain != ok || (ok && (env.NearAS != l.NearAS || env.FarAS != l.FarAS || env.Label != l.Label)) {
			consistent = false
		} else if ok {
			local.OK++
		} else {
			local.NotFound++
		}
	}
	if !consistent {
		local.Inconsistent++
		return false
	}
	return true
}

// SweepAnnotations replays every interface from an offline annotations
// file ("addr routerAS connAS" per line, the bdrmapit -annotations
// format) against the daemon and demands the answers be byte-equal:
// re-rendering each /v1/lookup response in the same format must
// reproduce the input line exactly. Returns the number of addresses
// verified.
func SweepAnnotations(ctx context.Context, baseURL, annotationsPath string) (int, error) {
	f, err := os.Open(annotationsPath)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	client := &http.Client{Timeout: 30 * time.Second}
	sc := bufio.NewScanner(f)
	n := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		fields := strings.Fields(string(line))
		if len(fields) != 3 {
			return n, fmt.Errorf("annotations line %d: want 3 fields, got %d", n+1, len(fields))
		}
		addr, err := netip.ParseAddr(fields[0])
		if err != nil {
			return n, fmt.Errorf("annotations line %d: %v", n+1, err)
		}
		url := fmt.Sprintf("%s/v1/lookup?ip=%s", baseURL, addr)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return n, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return n, err
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if cerr := resp.Body.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return n, err
		}
		if resp.StatusCode != http.StatusOK {
			return n, fmt.Errorf("lookup %s: status %d: %s", addr, resp.StatusCode, bytes.TrimSpace(body))
		}
		var env struct {
			Found    bool   `json:"found"`
			Degraded bool   `json:"degraded"`
			RouterAS uint32 `json:"router_as"`
			ConnAS   uint32 `json:"connected_as"`
		}
		if err := json.Unmarshal(body, &env); err != nil {
			return n, fmt.Errorf("lookup %s: bad response body: %v", addr, err)
		}
		if env.Degraded {
			return n, fmt.Errorf("lookup %s: degraded answer during sweep (run the sweep unloaded)", addr)
		}
		if !env.Found {
			return n, fmt.Errorf("lookup %s: daemon has no answer but the annotations file does", addr)
		}
		rendered := fmt.Sprintf("%s %d %d", addr, env.RouterAS, env.ConnAS)
		if rendered != strings.TrimRight(string(line), "\r\n") {
			return n, fmt.Errorf("lookup %s: daemon answer %q != annotations line %q", addr, rendered, string(line))
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	return n, nil
}
