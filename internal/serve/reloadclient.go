package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// ReloadClient triggers a daemon's POST /-/reload and absorbs the two
// refusals a healthy deployment produces in the normal course of
// publishing: 409 (the new snapshot is mid-publish and the daemon kept
// the old one serving) and 503 (admission control shed the request).
// Both are transient by design — the publisher's atomic rename lands,
// the in-flight burst drains — so the client retries with bounded
// attempts and jittered exponential backoff instead of failing the
// whole ingest cycle on a race it can simply outwait. Transport errors
// (daemon restarting, listener not up yet) retry the same way; any
// other HTTP status is a real refusal and fails immediately.
//
// The jitter stream is deterministic per Seed (xorshift64*), so tests
// drive the schedule through the Sleep seam and two ingesters seeded
// differently do not thunder in lockstep.
type ReloadClient struct {
	// Addr is the daemon address: "host:port" or a full http:// URL.
	Addr string
	// HTTP is the client to use; nil means a default client with a
	// 10s per-request timeout.
	HTTP *http.Client
	// Attempts bounds the tries (default 5).
	Attempts int
	// Base is the first backoff (default 100ms), doubling up to Max
	// (default 5s); each delay is jittered into [d/2, d].
	Base time.Duration
	Max  time.Duration
	// Seed selects the jitter stream; 0 uses a fixed default stream.
	Seed uint64
	// Sleep is the clock seam; nil means time.Sleep.
	Sleep func(time.Duration)
	// OnRetry, when set, observes each scheduled retry: the 1-based
	// attempt that failed, why, and the chosen backoff.
	OnRetry func(attempt int, cause string, backoff time.Duration)
}

// Reload posts /-/reload until the daemon accepts, returning the new
// snapshot generation. Exhausted retries return the last refusal.
func (c *ReloadClient) Reload(ctx context.Context) (uint64, error) {
	url := c.Addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	url = strings.TrimSuffix(url, "/") + "/-/reload"

	httpc := c.HTTP
	if httpc == nil {
		httpc = &http.Client{Timeout: 10 * time.Second}
	}
	attempts := c.Attempts
	if attempts <= 0 {
		attempts = 5
	}
	base := c.Base
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxd := c.Max
	if maxd <= 0 {
		maxd = 5 * time.Second
	}
	sleep := c.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	x := c.Seed
	if x == 0 {
		x = 0x9e3779b97f4a7c15
	}

	var lastErr error
	for a := 1; a <= attempts; a++ {
		gen, retryable, err := c.post(ctx, httpc, url)
		if err == nil {
			return gen, nil
		}
		lastErr = err
		if !retryable || a == attempts {
			break
		}
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		d := base << (a - 1)
		if d <= 0 || d > maxd {
			d = maxd
		}
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		j := x * 0x2545f4914f6cdd1d
		d = d/2 + time.Duration(j%uint64(d/2+1))
		if c.OnRetry != nil {
			c.OnRetry(a, err.Error(), d)
		}
		sleep(d)
	}
	return 0, fmt.Errorf("serve: reload %s: %w", c.Addr, lastErr)
}

// post performs one reload attempt. retryable reports whether the
// failure is one the backoff loop should outwait.
func (c *ReloadClient) post(ctx context.Context, httpc *http.Client, url string) (gen uint64, retryable bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, nil)
	if err != nil {
		return 0, false, err
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return 0, true, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	switch resp.StatusCode {
	case http.StatusOK:
		var out struct {
			Generation uint64 `json:"generation"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			return 0, false, fmt.Errorf("reload response: %w", err)
		}
		return out.Generation, false, nil
	case http.StatusConflict, http.StatusServiceUnavailable:
		return 0, true, fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	default:
		return 0, false, fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
}
