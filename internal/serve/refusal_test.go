package serve

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/faultio"
)

// encodeSnapshot returns the raw artifact bytes for a salted snapshot.
func encodeSnapshot(t testing.TB, salt uint32) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, makeSnapshot(salt)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// reframe rebuilds a valid envelope (correct length, correct CRC)
// around payload, so a test can corrupt the payload's *content* while
// keeping the envelope checks green — exercising the validation layers
// beneath the CRC.
func reframe(t testing.TB, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ckpt.WriteFrame(&buf, magic, Version, payload); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// payloadOf strips the envelope (8 magic + 1 version + 4 length header,
// 4 CRC trailer) from a valid artifact.
func payloadOf(data []byte) []byte {
	return data[13 : len(data)-4]
}

// TestSnapshotRefusals is the table of ways an artifact can be bad and
// the typed refusal each must produce — while a server already serving
// a good snapshot keeps answering from it, untouched. This is the
// validate-before-publish contract end to end: the corrupt file hits
// the same path a real reload takes (Server.Reload → Open), and the
// test proves both the refusal type and the non-disturbance of the
// published generation.
func TestSnapshotRefusals(t *testing.T) {
	valid := encodeSnapshot(t, 1)

	wantFormat := func(t *testing.T, err error) {
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Fatalf("error is %T, want *FormatError: %v", err, err)
		}
	}
	cases := []struct {
		name    string
		corrupt func(t *testing.T) []byte
		check   func(t *testing.T, err error)
	}{
		{
			"truncated mid-payload",
			func(t *testing.T) []byte { return valid[:len(valid)*2/3] },
			wantFormat,
		},
		{
			"truncated to empty",
			func(t *testing.T) []byte { return nil },
			wantFormat,
		},
		{
			"crc corrupt (bit rot mid-payload)",
			func(t *testing.T) []byte {
				b := bytes.Clone(valid)
				b[len(b)/2] ^= 0x40
				return b
			},
			wantFormat,
		},
		{
			"wrong magic",
			func(t *testing.T) []byte {
				b := bytes.Clone(valid)
				b[0] ^= 0xff
				return b
			},
			wantFormat,
		},
		{
			"wrong version",
			func(t *testing.T) []byte {
				b := bytes.Clone(valid)
				b[8] = Version + 1
				return b
			},
			func(t *testing.T, err error) {
				wantFormat(t, err)
				if want := "unsupported format version"; !contains(err.Error(), want) {
					t.Errorf("error %q does not mention %q", err, want)
				}
			},
		},
		{
			// The envelope is perfectly intact here — length and CRC both
			// verify — but the stamped content fingerprint disagrees with
			// the payload it frames. Only the fingerprint discipline
			// catches this class (a writer bug or a hand-assembled file).
			"fingerprint mismatch under valid crc",
			func(t *testing.T) []byte {
				payload := bytes.Clone(payloadOf(valid))
				binary.LittleEndian.PutUint64(payload, binary.LittleEndian.Uint64(payload)+1)
				return reframe(t, payload)
			},
			func(t *testing.T, err error) {
				var me *MismatchError
				if !errors.As(err, &me) {
					t.Fatalf("error is %T, want *MismatchError: %v", err, err)
				}
			},
		},
		{
			// Envelope and fingerprint both valid, but the decoded tables
			// violate a structural invariant: the payload is re-stamped
			// over content whose interface table is unsorted.
			"invariant violation under valid fingerprint",
			func(t *testing.T) []byte {
				bad := makeSnapshot(1)
				bad.Ifaces[0], bad.Ifaces[1] = bad.Ifaces[1], bad.Ifaces[0]
				var buf bytes.Buffer
				// Encode validates nothing; WriteFile is the guarded
				// entry. Encoding the unsorted tables directly yields a
				// well-framed, correctly fingerprinted, invalid snapshot.
				if err := Encode(&buf, bad); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			},
			func(t *testing.T, err error) {
				var ve *ValidationError
				if !errors.As(err, &ve) {
					t.Fatalf("error is %T, want *ValidationError: %v", err, err)
				}
			},
		},
	}

	dir := t.TempDir()
	path, want := writeSnapshot(t, dir, 1)
	srv := New(Config{SnapshotPath: path})
	if err := srv.Load(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	askOne := func(t *testing.T) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/lookup?ip=10.0.0.2")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		if cerr := resp.Body.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("lookup status %d: %s", resp.StatusCode, body)
		}
		wantFP := fmt.Sprintf("%q", fmt.Sprintf("%#x", want.Fingerprint()))
		if !bytes.Contains(body, []byte(wantFP)) {
			t.Fatalf("response no longer carries the published fingerprint %s: %s", wantFP, body)
		}
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			genBefore, fpBefore := srv.Generation()
			if err := os.WriteFile(path, tc.corrupt(t), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := srv.Reload()
			if err == nil {
				t.Fatal("Reload accepted a corrupt artifact")
			}
			tc.check(t, err)
			if gen, fp := srv.Generation(); gen != genBefore || fp != fpBefore {
				t.Errorf("published snapshot disturbed by refused reload: generation %d→%d, fingerprint %#x→%#x",
					genBefore, gen, fpBefore, fp)
			}
			askOne(t)
		})
	}

	// After the whole gauntlet, a good artifact still swaps in.
	if err := os.WriteFile(path, encodeSnapshot(t, 2), 0o644); err != nil {
		t.Fatal(err)
	}
	gen, err := srv.Reload()
	if err != nil {
		t.Fatalf("valid reload after refusals failed: %v", err)
	}
	if gen != 2 {
		t.Errorf("generation after one successful swap = %d, want 2", gen)
	}
}

func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }

// FuzzDecode drives the snapshot opener with arbitrary bytes, seeded
// from a valid artifact and the standard faultio corruption matrix
// applied to it. The contract under fuzzing: Decode never panics, and
// anything it accepts passes Validate (i.e. nothing structurally
// invalid can ever reach a published pointer).
func FuzzDecode(f *testing.F) {
	valid := encodeSnapshot(f, 1)
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:13])
	for _, c := range faultio.Matrix(int64(len(valid)), 7) {
		data, err := io.ReadAll(c.Wrap(bytes.NewReader(valid)))
		if err != nil && c.Corrupting {
			continue // read-error faults produce no byte stream to seed
		}
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("Decode accepted a snapshot that fails Validate: %v", verr)
		}
		s.Index()
		// SelfCheck may legitimately reject (e.g. empty tables); it must
		// simply not panic.
		_ = s.SelfCheck()
	})
}
