package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// reloadScript serves a canned status sequence, then 200s with a
// generation counter.
func reloadScript(t *testing.T, statuses ...int) (*httptest.Server, *int) {
	t.Helper()
	calls := new(int)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/-/reload" {
			t.Errorf("unexpected request: %s %s", r.Method, r.URL.Path)
		}
		i := *calls
		*calls++
		if i < len(statuses) {
			http.Error(w, "scripted refusal", statuses[i])
			return
		}
		fmt.Fprintf(w, `{"generation": %d}`, *calls)
	}))
	t.Cleanup(srv.Close)
	return srv, calls
}

// TestReloadClientRetries: 409 and 503 are outwaited with jittered
// exponential backoff through the fake clock, and the eventual 200's
// generation comes back.
func TestReloadClientRetries(t *testing.T) {
	srv, calls := reloadScript(t, http.StatusConflict, http.StatusServiceUnavailable)
	var sleeps []time.Duration
	c := &ReloadClient{
		Addr:  srv.URL,
		Base:  100 * time.Millisecond,
		Max:   time.Second,
		Seed:  7,
		Sleep: func(d time.Duration) { sleeps = append(sleeps, d) },
	}
	gen, err := c.Reload(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if gen != 3 || *calls != 3 {
		t.Fatalf("generation=%d calls=%d", gen, *calls)
	}
	if len(sleeps) != 2 {
		t.Fatalf("sleeps = %v", sleeps)
	}
	for i, want := range []time.Duration{100 * time.Millisecond, 200 * time.Millisecond} {
		if sleeps[i] < want/2 || sleeps[i] > want {
			t.Errorf("sleep %d = %v, want within [%v, %v]", i, sleeps[i], want/2, want)
		}
	}
}

// TestReloadClientExhaustion: a daemon that refuses forever fails
// after Attempts tries with the final refusal in the error.
func TestReloadClientExhaustion(t *testing.T) {
	srv, calls := reloadScript(t,
		http.StatusConflict, http.StatusConflict, http.StatusConflict, http.StatusConflict)
	retries := 0
	c := &ReloadClient{
		Addr:     strings.TrimPrefix(srv.URL, "http://"), // bare host:port form
		Attempts: 3,
		Sleep:    func(time.Duration) {},
		OnRetry:  func(int, string, time.Duration) { retries++ },
	}
	_, err := c.Reload(context.Background())
	if err == nil || !strings.Contains(err.Error(), "status 409") {
		t.Fatalf("Reload = %v", err)
	}
	if *calls != 3 || retries != 2 {
		t.Fatalf("calls=%d retries=%d", *calls, retries)
	}
}

// TestReloadClientHardRefusal: statuses outside {409, 503} are real
// refusals — no retry, immediate error.
func TestReloadClientHardRefusal(t *testing.T) {
	srv, calls := reloadScript(t, http.StatusBadRequest)
	c := &ReloadClient{
		Addr:  srv.URL,
		Sleep: func(time.Duration) { t.Error("hard refusal must not sleep") },
	}
	_, err := c.Reload(context.Background())
	if err == nil || !strings.Contains(err.Error(), "status 400") {
		t.Fatalf("Reload = %v", err)
	}
	if *calls != 1 {
		t.Fatalf("calls = %d", *calls)
	}
}

// TestReloadClientTransportRetry: connection failures retry like 503s
// (the daemon may simply not be up yet).
func TestReloadClientTransportRetry(t *testing.T) {
	srv, _ := reloadScript(t)
	srv.Close() // nothing listening: every attempt is a transport error
	c := &ReloadClient{
		Addr:     srv.URL,
		Attempts: 2,
		Sleep:    func(time.Duration) {},
	}
	start := time.Now()
	_, err := c.Reload(context.Background())
	if err == nil {
		t.Fatal("reload against a closed listener succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retries slept on the real clock: %v", elapsed)
	}
}
