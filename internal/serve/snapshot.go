// Package serve is the annotation-serving layer: it loads a completed
// bdrmapIT inference — per-interface router/operator annotations, the
// inferred interdomain links, and a prefix→origin table for degraded
// answers — into an immutable, validated Snapshot and serves
// IP → router → operator-AS and is-this-link-interdomain? queries over
// HTTP at high QPS.
//
// The package is deliberately inference-free: like cmd/explain, it
// reads a serialized artifact and never imports the engine or any
// loader, so an answer can only come from the recorded run. Robustness
// is the design center rather than an afterthought:
//
//   - snapshots are validated before publication (envelope CRC,
//     content fingerprint, structural invariants, self-check probes) —
//     a corrupt artifact is refused with a typed error while the
//     previously published snapshot keeps serving;
//   - published snapshots sit behind an atomic pointer, so a hot swap
//     is one pointer store and every request is answered entirely from
//     one generation;
//   - a failed post-swap self-check rolls the pointer back;
//   - an admission controller sheds load (503 + Retry-After) at a
//     bounded in-flight budget, degrading the expensive query class to
//     prefix-table-only answers first;
//   - every handler runs under a per-request deadline and panic
//     recovery, so one bad request costs one 500, not the process.
package serve

import (
	"fmt"
	"net/netip"
	"sort"

	"repro/internal/iptrie"
)

// PrefixKind labels which ip2as source a snapshot prefix record came
// from, mirroring internal/ip2as's layering (IXP first, then BGP, then
// RIR) without importing the loaders that build those sources.
type PrefixKind uint8

const (
	// PrefixBGP is a BGP-announced prefix with its origin AS.
	PrefixBGP PrefixKind = iota + 1
	// PrefixRIR is an RIR-delegated prefix (fallback space).
	PrefixRIR
	// PrefixIXP is an IXP peering LAN; it has no origin AS.
	PrefixIXP
)

// String returns the ip2as source name for k.
func (k PrefixKind) String() string {
	switch k {
	case PrefixBGP:
		return "bgp"
	case PrefixRIR:
		return "rir"
	case PrefixIXP:
		return "ixp"
	default:
		return "unknown"
	}
}

// Iface is one observed interface's committed annotation: the dense
// index of the router that owns it and the AS inferred on the far side
// of its link (the interface annotation). Router is an index into
// Snapshot.Routers.
type Iface struct {
	Addr   netip.Addr
	Router uint32
	ConnAS uint32
}

// Link is one inferred interdomain link keyed by its far-side
// interface: the near router is operated by NearAS, the far router by
// FarAS, with the traceroute-derived confidence label ("N", "E", "M").
type Link struct {
	FarAddr       netip.Addr
	NearAS, FarAS uint32
	Label         string
}

// Prefix is one prefix→origin record of the run's ip2as view, used for
// degraded (annotation-free) answers under overload and for the cheap
// /v1/ip2as query class. Origin is 0 for IXP prefixes.
type Prefix struct {
	Prefix netip.Prefix
	Origin uint32
	Kind   PrefixKind
}

// Snapshot is one completed inference in queryable form. A Snapshot is
// immutable after Index: the server publishes it behind an atomic
// pointer and any number of request goroutines read it without locks.
type Snapshot struct {
	// Source describes where the snapshot came from (free-form,
	// operator-facing; e.g. "bdrmapit: 1234 interfaces, 567 routers").
	Source string
	// AnnDigest is the FNV-64a digest of the offline annotations
	// rendering ("addr routerAS connAS\n" per interface, graph order),
	// the byte-equality contract between the daemon and the file a run
	// wrote on disk.
	AnnDigest uint64
	// Routers holds each router's operator AS, indexed by the dense
	// router index Iface.Router refers to.
	Routers []uint32
	// Ifaces holds every observed interface, sorted strictly ascending
	// by address.
	Ifaces []Iface
	// Links holds the inferred interdomain links, sorted by (FarAddr,
	// NearAS, FarAS).
	Links []Link
	// Prefixes holds the ip2as view, sorted by (Addr, Bits, Kind).
	Prefixes []Prefix

	// trie indexes Prefixes for longest-prefix lookup; built by Index.
	trie *iptrie.Trie[Prefix]
	// fingerprint is the content fingerprint stamped at encode time and
	// re-derived on Open; see Fingerprint.
	fingerprint uint64
}

// ValidationError reports a snapshot whose envelope was intact but
// whose content violates a structural invariant — an out-of-range
// router index, an unsorted table, a malformed address. It is the
// refusal a hot swap surfaces while the old snapshot keeps serving.
type ValidationError struct {
	Reason string
}

func (e *ValidationError) Error() string {
	return "serve: invalid snapshot: " + e.Reason
}

// Validate checks every structural invariant the serving path relies
// on: interface addresses strictly ascending (binary search), router
// indices in range, links and prefixes sorted and well-formed. It
// returns a *ValidationError on the first violation. Validate does not
// touch the fingerprint; the codec checks that during Open.
func (s *Snapshot) Validate() error {
	fail := func(format string, args ...any) error {
		return &ValidationError{Reason: fmt.Sprintf(format, args...)}
	}
	for i := range s.Ifaces {
		f := &s.Ifaces[i]
		if !f.Addr.IsValid() {
			return fail("interface %d has an invalid address", i)
		}
		if int(f.Router) >= len(s.Routers) {
			return fail("interface %s references router %d of %d", f.Addr, f.Router, len(s.Routers))
		}
		if i > 0 && s.Ifaces[i-1].Addr.Compare(f.Addr) >= 0 {
			return fail("interface table not strictly sorted at %d (%s after %s)", i, f.Addr, s.Ifaces[i-1].Addr)
		}
	}
	for i := range s.Links {
		l := &s.Links[i]
		if !l.FarAddr.IsValid() {
			return fail("link %d has an invalid far address", i)
		}
		switch l.Label {
		case "N", "E", "M":
		default:
			return fail("link %d has unknown confidence label %q", i, l.Label)
		}
		if i > 0 && compareLinks(&s.Links[i-1], l) > 0 {
			return fail("link table not sorted at %d", i)
		}
	}
	for i := range s.Prefixes {
		p := &s.Prefixes[i]
		if !p.Prefix.IsValid() {
			return fail("prefix %d is invalid", i)
		}
		if p.Kind < PrefixBGP || p.Kind > PrefixIXP {
			return fail("prefix %d has unknown kind %d", i, p.Kind)
		}
	}
	return nil
}

// compareLinks orders links by (FarAddr, NearAS, FarAS).
func compareLinks(a, b *Link) int {
	if c := a.FarAddr.Compare(b.FarAddr); c != 0 {
		return c
	}
	switch {
	case a.NearAS != b.NearAS:
		if a.NearAS < b.NearAS {
			return -1
		}
		return 1
	case a.FarAS != b.FarAS:
		if a.FarAS < b.FarAS {
			return -1
		}
		return 1
	}
	return 0
}

// Index builds the snapshot's query structures (the prefix trie). It
// must be called once, before the snapshot is published; Open does so
// automatically. Later layers win ip2as conflicts in reverse priority
// order, so the trie answers like internal/ip2as layers its sources:
// for an identical prefix, IXP beats BGP beats RIR.
func (s *Snapshot) Index() {
	t := iptrie.New[Prefix]()
	// Insert in ascending priority so the highest-priority record for
	// an identical prefix is the one that sticks.
	for _, kind := range []PrefixKind{PrefixRIR, PrefixBGP, PrefixIXP} {
		for _, p := range s.Prefixes {
			if p.Kind == kind {
				t.Insert(p.Prefix, p)
			}
		}
	}
	s.trie = t
}

// SortTables puts the snapshot's tables into canonical order. Builders
// call it before encoding; decoded snapshots are refused unless already
// canonical, so encode∘decode is the identity.
func (s *Snapshot) SortTables() {
	sort.Slice(s.Ifaces, func(i, j int) bool {
		return s.Ifaces[i].Addr.Compare(s.Ifaces[j].Addr) < 0
	})
	sort.Slice(s.Links, func(i, j int) bool {
		return compareLinks(&s.Links[i], &s.Links[j]) < 0
	})
	sort.Slice(s.Prefixes, func(i, j int) bool {
		a, b := &s.Prefixes[i], &s.Prefixes[j]
		if c := a.Prefix.Addr().Compare(b.Prefix.Addr()); c != 0 {
			return c < 0
		}
		if a.Prefix.Bits() != b.Prefix.Bits() {
			return a.Prefix.Bits() < b.Prefix.Bits()
		}
		return a.Kind < b.Kind
	})
}

// Fingerprint returns the snapshot's content fingerprint: the FNV-64a
// hash of its canonical payload encoding, stamped into the artifact at
// write time and re-derived on Open. 0 for a snapshot that has not
// been encoded or opened.
func (s *Snapshot) Fingerprint() uint64 { return s.fingerprint }

// LookupResult is one full-service answer: the annotation state of an
// observed interface.
type LookupResult struct {
	// Router is the dense index of the owning router (an opaque,
	// snapshot-scoped identifier).
	Router uint32
	// RouterAS is the AS inferred to operate the owning router.
	RouterAS uint32
	// ConnAS is the AS inferred on the far side of the interface's
	// link (0 when none was inferred).
	ConnAS uint32
}

// Lookup answers IP → router → operator-AS for an observed interface
// address. ok is false when addr was not observed in the run.
func (s *Snapshot) Lookup(addr netip.Addr) (LookupResult, bool) {
	i := sort.Search(len(s.Ifaces), func(i int) bool {
		return s.Ifaces[i].Addr.Compare(addr) >= 0
	})
	if i >= len(s.Ifaces) || s.Ifaces[i].Addr != addr {
		return LookupResult{}, false
	}
	f := &s.Ifaces[i]
	return LookupResult{
		Router:   f.Router,
		RouterAS: s.Routers[f.Router],
		ConnAS:   f.ConnAS,
	}, true
}

// LookupLink reports whether addr is the far side of an inferred
// interdomain link, and if so the highest-confidence link record for
// it (links are sorted, and "E" < "M" < "N" alphabetically does not
// match confidence order, so the best label is selected explicitly:
// N > E > M).
func (s *Snapshot) LookupLink(addr netip.Addr) (Link, bool) {
	i := sort.Search(len(s.Links), func(i int) bool {
		return s.Links[i].FarAddr.Compare(addr) >= 0
	})
	best := -1
	for ; i < len(s.Links) && s.Links[i].FarAddr == addr; i++ {
		if best < 0 || labelRank(s.Links[i].Label) > labelRank(s.Links[best].Label) {
			best = i
		}
	}
	if best < 0 {
		return Link{}, false
	}
	return s.Links[best], true
}

// labelRank orders confidence labels: nexthop > echo > multihop.
func labelRank(label string) int {
	switch label {
	case "N":
		return 3
	case "E":
		return 2
	case "M":
		return 1
	default:
		return 0
	}
}

// LookupPrefix answers the degraded (ip2as-only) query class: the
// longest matching prefix record for addr from the run's ip2as view.
// ok is false when no prefix covers addr. Requires Index.
func (s *Snapshot) LookupPrefix(addr netip.Addr) (Prefix, bool) {
	if s.trie == nil {
		return Prefix{}, false
	}
	p, _, ok := s.trie.Lookup(addr)
	return p, ok
}

// SelfCheck probes the snapshot through the same lookup paths requests
// take: a sample of interface records must round-trip exactly, the
// first link and prefix records must be findable, and an address
// outside the table must miss. A snapshot that fails SelfCheck is
// refused at publish time (or rolled back after a swap) — the
// executable form of "validate before publish".
func (s *Snapshot) SelfCheck() error {
	fail := func(format string, args ...any) error {
		return &ValidationError{Reason: "self-check: " + fmt.Sprintf(format, args...)}
	}
	if len(s.Routers) == 0 || len(s.Ifaces) == 0 {
		return fail("empty snapshot (%d routers, %d interfaces)", len(s.Routers), len(s.Ifaces))
	}
	for _, i := range []int{0, len(s.Ifaces) / 2, len(s.Ifaces) - 1} {
		f := &s.Ifaces[i]
		got, ok := s.Lookup(f.Addr)
		if !ok {
			return fail("interface %s not found through its own table", f.Addr)
		}
		if got.Router != f.Router || got.RouterAS != s.Routers[f.Router] || got.ConnAS != f.ConnAS {
			return fail("interface %s answered %+v, table holds router=%d conn=%d", f.Addr, got, f.Router, f.ConnAS)
		}
	}
	if len(s.Links) > 0 {
		l := s.Links[0]
		if _, ok := s.LookupLink(l.FarAddr); !ok {
			return fail("link far side %s not found through the link index", l.FarAddr)
		}
	}
	if len(s.Prefixes) > 0 {
		if s.trie == nil {
			return fail("prefix table present but not indexed")
		}
		p := s.Prefixes[0]
		if _, ok := s.LookupPrefix(p.Prefix.Addr()); !ok {
			return fail("prefix %s not found through the trie", p.Prefix)
		}
	}
	// A guaranteed miss: the unspecified address is never an observed
	// interface (loaders reject it), so a hit here means the search is
	// broken.
	if _, ok := s.Lookup(netip.IPv4Unspecified()); ok {
		return fail("lookup of 0.0.0.0 unexpectedly succeeded")
	}
	return nil
}
