package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/netip"
	"os"

	"repro/internal/ckpt"
)

// Version is the serving-snapshot format version; Open refuses any
// other. Serving annotations reinterpreted across format revisions
// would be answered confidently and wrongly — worse than refusing.
const Version = 1

// magic identifies a bdrmapIT serving snapshot (8 bytes, sibling of
// ckpt's "BMITCKPT" and prov's "BMITPROV").
const magic = "BMITSRVE"

// kind is the artifact name used in envelope diagnostics.
const kind = "bdrmapIT serving snapshot"

// FormatError reports a snapshot artifact that failed structural
// validation: wrong magic or version, bad length, failed CRC, or a
// malformed payload. Corruption is detected here — at open time —
// rather than surfacing as wrong answers to live queries.
type FormatError struct {
	Reason string
}

func (e *FormatError) Error() string {
	return "serve: invalid snapshot artifact: " + e.Reason
}

// MismatchError reports an artifact whose envelope was intact but whose
// stamped content fingerprint disagrees with the payload it frames — a
// writer bug, a hand-assembled artifact, or corruption that collided
// the CRC. The snapshot is refused: serving annotations that do not
// match their claimed identity would poison every generation-
// consistency check downstream.
type MismatchError struct {
	Want, Got uint64
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("serve: snapshot fingerprint mismatch: artifact claims %#x but content hashes to %#x; refusing to publish", e.Want, e.Got)
}

// Encode writes s to w: the shared artifact envelope (ckpt.WriteFrame)
// around a payload whose first 8 bytes are the FNV-64a fingerprint of
// everything after them. Encoding is a pure function of s's exported
// tables (canonical order enforced via SortTables by builders), so two
// identical runs produce byte-identical snapshots and fingerprint
// equality means table equality.
func Encode(w io.Writer, s *Snapshot) error {
	if s == nil {
		return errors.New("serve: nil snapshot")
	}
	body := appendPayload(nil, s)
	h := fnv.New64a()
	h.Write(body)
	s.fingerprint = h.Sum64()
	payload := binary.LittleEndian.AppendUint64(make([]byte, 0, 8+len(body)), s.fingerprint)
	payload = append(payload, body...)
	return ckpt.WriteFrame(w, magic, Version, payload)
}

func appendPayload(p []byte, s *Snapshot) []byte {
	p = binary.AppendUvarint(p, uint64(len(s.Source)))
	p = append(p, s.Source...)
	p = binary.LittleEndian.AppendUint64(p, s.AnnDigest)
	p = binary.AppendUvarint(p, uint64(len(s.Routers)))
	for _, as := range s.Routers {
		p = binary.AppendUvarint(p, uint64(as))
	}
	p = binary.AppendUvarint(p, uint64(len(s.Ifaces)))
	for i := range s.Ifaces {
		f := &s.Ifaces[i]
		p = appendAddr(p, f.Addr)
		p = binary.AppendUvarint(p, uint64(f.Router))
		p = binary.AppendUvarint(p, uint64(f.ConnAS))
	}
	p = binary.AppendUvarint(p, uint64(len(s.Links)))
	for i := range s.Links {
		l := &s.Links[i]
		p = appendAddr(p, l.FarAddr)
		p = binary.AppendUvarint(p, uint64(l.NearAS))
		p = binary.AppendUvarint(p, uint64(l.FarAS))
		var lb byte
		if len(l.Label) > 0 {
			lb = l.Label[0]
		}
		p = append(p, lb)
	}
	p = binary.AppendUvarint(p, uint64(len(s.Prefixes)))
	for i := range s.Prefixes {
		pr := &s.Prefixes[i]
		p = appendAddr(p, pr.Prefix.Addr())
		p = append(p, byte(pr.Prefix.Bits()))
		p = binary.AppendUvarint(p, uint64(pr.Origin))
		p = append(p, byte(pr.Kind))
	}
	return p
}

// appendAddr encodes an address as a length byte (4 or 16) followed by
// the raw bytes, preserving the IPv4/IPv6 distinction.
func appendAddr(p []byte, a netip.Addr) []byte {
	if a.Is4() {
		b := a.As4()
		p = append(p, 4)
		return append(p, b[:]...)
	}
	b := a.As16()
	p = append(p, 16)
	return append(p, b[:]...)
}

// Decode reads one snapshot from data, validating the envelope, the
// content fingerprint, the payload structure, and (via Validate) the
// table invariants. Structural failures return a *FormatError,
// fingerprint disagreement a *MismatchError, and invariant violations a
// *ValidationError; Decode never panics on corrupt input. The returned
// snapshot is not yet indexed — Open does that.
func Decode(data []byte) (*Snapshot, error) {
	payload, err := ckpt.ReadFrame(data, magic, Version, kind)
	if err != nil {
		var fe *ckpt.FrameError
		if errors.As(err, &fe) {
			return nil, &FormatError{Reason: fe.Reason}
		}
		return nil, err
	}
	if len(payload) < 8 {
		return nil, &FormatError{Reason: fmt.Sprintf("payload too short for fingerprint (%d bytes)", len(payload))}
	}
	want := binary.LittleEndian.Uint64(payload)
	body := payload[8:]
	h := fnv.New64a()
	h.Write(body)
	if got := h.Sum64(); got != want {
		return nil, &MismatchError{Want: want, Got: got}
	}

	d := &decoder{b: body}
	s := &Snapshot{fingerprint: want}
	s.Source = d.str("source")
	s.AnnDigest = d.u64()
	n := d.count("router count")
	d.checkLen(n, 1, "router table")
	if d.err == nil && n > 0 {
		s.Routers = make([]uint32, 0, n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		s.Routers = append(s.Routers, d.u32v("router AS"))
	}
	n = d.count("interface count")
	d.checkLen(n, 7, "interface table")
	if d.err == nil && n > 0 {
		s.Ifaces = make([]Iface, 0, n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		s.Ifaces = append(s.Ifaces, Iface{
			Addr:   d.addr(),
			Router: d.u32v("interface router index"),
			ConnAS: d.u32v("interface connected AS"),
		})
	}
	n = d.count("link count")
	d.checkLen(n, 8, "link table")
	if d.err == nil && n > 0 {
		s.Links = make([]Link, 0, n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		l := Link{
			FarAddr: d.addr(),
			NearAS:  d.u32v("link near AS"),
			FarAS:   d.u32v("link far AS"),
		}
		l.Label = string(rune(d.u8()))
		s.Links = append(s.Links, l)
	}
	n = d.count("prefix count")
	d.checkLen(n, 8, "prefix table")
	if d.err == nil && n > 0 {
		s.Prefixes = make([]Prefix, 0, n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		a := d.addr()
		bits := int(d.u8())
		pr := Prefix{
			Origin: d.u32v("prefix origin AS"),
			Kind:   PrefixKind(d.u8()),
		}
		if d.err == nil {
			p := netip.PrefixFrom(a, bits)
			if !p.IsValid() {
				d.fail(fmt.Sprintf("invalid prefix %s/%d", a, bits))
			}
			pr.Prefix = p
		}
		s.Prefixes = append(s.Prefixes, pr)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.b) {
		return nil, &FormatError{Reason: fmt.Sprintf("%d trailing payload bytes", len(d.b)-d.off)}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// WriteFile atomically publishes the snapshot at path (write-temp +
// fsync + rename via ckpt.AtomicWrite), so a daemon re-opening the path
// mid-write sees either the complete old artifact or the complete new
// one — the producer half of the hot-swap contract.
func WriteFile(path string, s *Snapshot) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if err := ckpt.AtomicWrite(path, func(w io.Writer) error { return Encode(w, s) }); err != nil {
		return fmt.Errorf("serve: writing snapshot %s: %w", path, err)
	}
	return nil
}

// Open loads, validates, self-checks, and indexes the snapshot at
// path: the one entry point a server uses, so nothing unvalidated can
// reach the published pointer. Failures are typed — *FormatError for
// structural corruption, *MismatchError for fingerprint disagreement,
// *ValidationError for invariant or self-check failures — and the
// caller's currently published snapshot is never touched.
func Open(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("serve: reading snapshot %s: %w", path, err)
	}
	s, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("serve: %s: %w", path, err)
	}
	s.Index()
	if err := s.SelfCheck(); err != nil {
		return nil, fmt.Errorf("serve: %s: %w", path, err)
	}
	return s, nil
}

// decoder is a bounds-checked cursor over the payload; the first
// structural violation latches err and subsequent reads are no-ops
// (the same discipline as ckpt's and prov's decoders).
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(reason string) {
	if d.err == nil {
		d.err = &FormatError{Reason: reason}
	}
}

func (d *decoder) u8() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail("payload truncated reading byte")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.b) {
		d.fail("payload truncated reading u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *decoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("malformed varint in " + what)
		return 0
	}
	d.off += n
	return v
}

// count reads a non-negative size that must be plausible for the
// payload length.
func (d *decoder) count(what string) int {
	v := d.uvarint(what)
	if v > uint64(len(d.b)) {
		d.fail(fmt.Sprintf("implausible %s %d for a %d-byte payload", what, v, len(d.b)))
		return 0
	}
	return int(v)
}

// u32v reads a uvarint that must fit a uint32 (an AS number or table
// index).
func (d *decoder) u32v(what string) uint32 {
	v := d.uvarint(what)
	if v > 1<<32-1 {
		d.fail(what + " overflows uint32")
		return 0
	}
	return uint32(v)
}

// checkLen rejects a declared element count whose minimum encoding
// could not fit in the remaining payload, before anything allocates.
func (d *decoder) checkLen(n, minBytesPer int, what string) {
	if d.err != nil {
		return
	}
	if n*minBytesPer > len(d.b)-d.off {
		d.fail(fmt.Sprintf("declared %s %d exceeds remaining payload", what, n))
	}
}

func (d *decoder) str(what string) string {
	n := d.count(what + " length")
	if d.err != nil {
		return ""
	}
	if d.off+n > len(d.b) {
		d.fail("payload truncated reading " + what)
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

// addr reads a length-prefixed address (4 or 16 bytes).
func (d *decoder) addr() netip.Addr {
	n := d.u8()
	if d.err != nil {
		return netip.Addr{}
	}
	if n != 4 && n != 16 {
		d.fail(fmt.Sprintf("address length %d (want 4 or 16)", n))
		return netip.Addr{}
	}
	if d.off+int(n) > len(d.b) {
		d.fail("payload truncated reading address")
		return netip.Addr{}
	}
	a, ok := netip.AddrFromSlice(d.b[d.off : d.off+int(n)])
	if !ok {
		d.fail("malformed address bytes")
		return netip.Addr{}
	}
	d.off += int(n)
	return a
}
