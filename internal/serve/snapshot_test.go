package serve

import (
	"bytes"
	"errors"
	"fmt"
	"net/netip"
	"path/filepath"
	"testing"
)

// makeSnapshot builds a small, valid snapshot whose answers depend on
// salt, so two snapshots over the same address population give
// distinguishable answers — the shape a hot swap serves.
func makeSnapshot(salt uint32) *Snapshot {
	s := &Snapshot{
		Source:    fmt.Sprintf("test snapshot salt=%d", salt),
		AnnDigest: 0x1234 + uint64(salt),
		Routers:   []uint32{100 + salt, 200 + salt, 0},
	}
	for i := 0; i < 16; i++ {
		s.Ifaces = append(s.Ifaces, Iface{
			Addr:   netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)}),
			Router: uint32(i % 3),
			ConnAS: 300 + salt + uint32(i),
		})
	}
	s.Ifaces = append(s.Ifaces, Iface{
		Addr:   netip.MustParseAddr("2001:db8::1"),
		Router: 1,
		ConnAS: 400 + salt,
	})
	s.Links = []Link{
		{FarAddr: netip.AddrFrom4([4]byte{10, 0, 0, 3}), NearAS: 100 + salt, FarAS: 200 + salt, Label: "M"},
		{FarAddr: netip.AddrFrom4([4]byte{10, 0, 0, 3}), NearAS: 100 + salt, FarAS: 200 + salt, Label: "N"},
		{FarAddr: netip.AddrFrom4([4]byte{10, 0, 0, 7}), NearAS: 200 + salt, FarAS: 100 + salt, Label: "E"},
	}
	s.Prefixes = []Prefix{
		{Prefix: netip.MustParsePrefix("10.0.0.0/8"), Origin: 7018, Kind: PrefixBGP},
		{Prefix: netip.MustParsePrefix("10.0.0.0/8"), Origin: 64500, Kind: PrefixRIR},
		{Prefix: netip.MustParsePrefix("10.1.0.0/16"), Origin: 64501 + salt, Kind: PrefixRIR},
		{Prefix: netip.MustParsePrefix("206.126.236.0/22"), Kind: PrefixIXP},
	}
	s.SortTables()
	return s
}

// writeSnapshot publishes a salted snapshot into dir and returns its
// path and the opened (validated, indexed) form.
func writeSnapshot(t *testing.T, dir string, salt uint32) (string, *Snapshot) {
	t.Helper()
	path := filepath.Join(dir, "serve.snap")
	if err := WriteFile(path, makeSnapshot(salt)); err != nil {
		t.Fatal(err)
	}
	snap, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, snap
}

func TestRoundTrip(t *testing.T) {
	want := makeSnapshot(1)
	var buf bytes.Buffer
	if err := Encode(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.Source != want.Source || got.AnnDigest != want.AnnDigest {
		t.Errorf("header round-trip: got (%q, %#x), want (%q, %#x)",
			got.Source, got.AnnDigest, want.Source, want.AnnDigest)
	}
	if len(got.Routers) != len(want.Routers) || len(got.Ifaces) != len(want.Ifaces) ||
		len(got.Links) != len(want.Links) || len(got.Prefixes) != len(want.Prefixes) {
		t.Fatalf("table sizes changed across round trip: %d/%d/%d/%d vs %d/%d/%d/%d",
			len(got.Routers), len(got.Ifaces), len(got.Links), len(got.Prefixes),
			len(want.Routers), len(want.Ifaces), len(want.Links), len(want.Prefixes))
	}
	for i := range want.Ifaces {
		if got.Ifaces[i] != want.Ifaces[i] {
			t.Errorf("iface %d: got %+v, want %+v", i, got.Ifaces[i], want.Ifaces[i])
		}
	}
	if got.Fingerprint() == 0 || got.Fingerprint() != want.Fingerprint() {
		t.Errorf("fingerprint: decoded %#x, encoded %#x", got.Fingerprint(), want.Fingerprint())
	}

	// Determinism: encoding the same tables twice is byte-identical.
	var again bytes.Buffer
	if err := Encode(&again, makeSnapshot(1)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("two encodings of identical tables differ")
	}
	// And a different salt yields a different fingerprint — the property
	// cross-generation consistency checks rely on.
	var other bytes.Buffer
	if err := Encode(&other, makeSnapshot(2)); err != nil {
		t.Fatal(err)
	}
	o, err := Decode(other.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if o.Fingerprint() == got.Fingerprint() {
		t.Error("different tables produced the same fingerprint")
	}
}

func TestLookup(t *testing.T) {
	_, snap := writeSnapshot(t, t.TempDir(), 5)

	res, ok := snap.Lookup(netip.MustParseAddr("10.0.0.2"))
	if !ok {
		t.Fatal("10.0.0.2 not found")
	}
	// Interface index 1: router 1, ConnAS 300+5+1.
	if res.Router != 1 || res.RouterAS != 205 || res.ConnAS != 306 {
		t.Errorf("lookup answered %+v, want router=1 routerAS=205 connAS=306", res)
	}
	if _, ok := snap.Lookup(netip.MustParseAddr("10.0.0.99")); ok {
		t.Error("unobserved address found")
	}
	if _, ok := snap.Lookup(netip.MustParseAddr("2001:db8::1")); !ok {
		t.Error("IPv6 interface not found")
	}

	// LookupLink picks the highest-confidence record among duplicates:
	// N over M.
	l, ok := snap.LookupLink(netip.MustParseAddr("10.0.0.3"))
	if !ok || l.Label != "N" {
		t.Errorf("link lookup got (%+v, %v), want the N-labelled record", l, ok)
	}
	if _, ok := snap.LookupLink(netip.MustParseAddr("10.0.0.4")); ok {
		t.Error("non-link address reported as interdomain")
	}

	// Prefix layering: for the identical 10.0.0.0/8, BGP beats RIR.
	p, ok := snap.LookupPrefix(netip.MustParseAddr("10.200.0.1"))
	if !ok || p.Kind != PrefixBGP || p.Origin != 7018 {
		t.Errorf("prefix lookup got (%+v, %v), want the BGP record", p, ok)
	}
	// Longest match still wins across distinct prefixes.
	p, ok = snap.LookupPrefix(netip.MustParseAddr("10.1.2.3"))
	if !ok || p.Prefix.Bits() != 16 {
		t.Errorf("prefix lookup got (%+v, %v), want the /16", p, ok)
	}
	if _, ok := snap.LookupPrefix(netip.MustParseAddr("203.0.113.9")); ok {
		t.Error("uncovered address matched a prefix")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Snapshot)
	}{
		{"unsorted ifaces", func(s *Snapshot) {
			s.Ifaces[0], s.Ifaces[1] = s.Ifaces[1], s.Ifaces[0]
		}},
		{"duplicate iface", func(s *Snapshot) {
			s.Ifaces[1] = s.Ifaces[0]
		}},
		{"router index out of range", func(s *Snapshot) {
			s.Ifaces[0].Router = uint32(len(s.Routers))
		}},
		{"invalid iface addr", func(s *Snapshot) {
			s.Ifaces[0].Addr = netip.Addr{}
		}},
		{"unknown link label", func(s *Snapshot) {
			s.Links[0].Label = "X"
		}},
		{"unsorted links", func(s *Snapshot) {
			s.Links[0], s.Links[2] = s.Links[2], s.Links[0]
		}},
		{"unknown prefix kind", func(s *Snapshot) {
			s.Prefixes[0].Kind = 9
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := makeSnapshot(1)
			tc.mutate(s)
			err := s.Validate()
			if err == nil {
				t.Fatal("Validate accepted a corrupt snapshot")
			}
			var ve *ValidationError
			if !errors.As(err, &ve) {
				t.Fatalf("error is %T, want *ValidationError: %v", err, err)
			}
		})
	}
}

func TestSelfCheck(t *testing.T) {
	_, snap := writeSnapshot(t, t.TempDir(), 3)
	if err := snap.SelfCheck(); err != nil {
		t.Fatalf("valid snapshot failed self-check: %v", err)
	}
	empty := &Snapshot{}
	if err := empty.SelfCheck(); err == nil {
		t.Error("empty snapshot passed self-check")
	}
	// A snapshot with prefixes but no index must refuse publication.
	unindexed := makeSnapshot(1)
	if err := unindexed.SelfCheck(); err == nil {
		t.Error("unindexed snapshot passed self-check")
	}
}
