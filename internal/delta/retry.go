package delta

import "time"

// Retrier runs an operation with bounded attempts and jittered
// exponential backoff — the intake loop's answer to transient I/O
// failures (a batch file mid-copy, a reload endpoint mid-swap): retry
// a few times with growing, jittered delays, and only then escalate to
// quarantine. The jitter stream is a deterministic xorshift64*
// sequence seeded from Seed (use the batch fingerprint), so two runs
// over the same inputs back off identically and tests can assert exact
// delays through the Sleep seam.
type Retrier struct {
	// Attempts is the maximum number of tries (default 4).
	Attempts int
	// Base is the first backoff delay (default 100ms); the delay
	// doubles per retry up to Max (default 5s).
	Base time.Duration
	Max  time.Duration
	// Seed selects the jitter stream; 0 uses a fixed default stream.
	Seed uint64
	// Sleep is the clock seam; nil means time.Sleep.
	Sleep func(time.Duration)
	// OnRetry, when set, observes each scheduled retry: the 1-based
	// attempt that just failed, its error, and the backoff chosen
	// before the next attempt.
	OnRetry func(attempt int, err error, backoff time.Duration)
}

// Do runs op until it succeeds or attempts are exhausted, returning
// nil or the final attempt's error. Each failed attempt (except the
// last) sleeps a jittered delay in [d/2, d] where d doubles from Base
// and caps at Max — the half-floor keeps retries spaced out, the
// jitter keeps a fleet of ingesters from thundering in lockstep.
func (r *Retrier) Do(op func() error) error {
	attempts := r.Attempts
	if attempts <= 0 {
		attempts = 4
	}
	base := r.Base
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxd := r.Max
	if maxd <= 0 {
		maxd = 5 * time.Second
	}
	sleep := r.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	x := r.Seed
	if x == 0 {
		x = 0x9e3779b97f4a7c15
	}
	var err error
	for a := 1; a <= attempts; a++ {
		if err = op(); err == nil {
			return nil
		}
		if a == attempts {
			break
		}
		d := base << (a - 1)
		if d <= 0 || d > maxd {
			d = maxd
		}
		// xorshift64* step; the high bits are well mixed.
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		j := x * 0x2545f4914f6cdd1d
		d = d/2 + time.Duration(j%uint64(d/2+1))
		if r.OnRetry != nil {
			r.OnRetry(a, err, d)
		}
		sleep(d)
	}
	return err
}
