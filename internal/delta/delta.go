// Package delta is the durable intake layer for continuous ingest: it
// decides, for each arriving traceroute batch, whether the batch is
// new, a crash-interrupted retry, an idempotent re-delivery, or a
// replay of already-seen content — and it makes every one of those
// decisions survivable. The write-ahead intake journal (internal/ckpt
// framing, one fsynced CRC-guarded record per transition) is the
// single source of truth for intake state; a process killed at any
// byte boundary reopens the store, replays the journal, and resumes
// exactly where the transition log left off.
//
// The batch state machine:
//
//	          ┌────────── same name ──────────→ resume apply
//	new ──→ pending ──→ applied ── same name ──→ skip (idempotent)
//	                │        └──── other name ─→ poison (replay)
//	                └─→ quarantined ─ same name → skip
//	                             └─── other name → poison (replay)
//
// Poison batches — decode failures, error-budget blowouts, fingerprint
// replays, and transient I/O failures that survive bounded retry — are
// copied into the quarantine directory with a reason file and recorded
// in the journal. A quarantined batch is never applied and never
// blocks the batches behind it.
package delta

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"

	"repro/internal/ckpt"
	"repro/internal/traceroute"
)

// Directory layout under a Store's root. The refinement checkpoint
// (ckpt.FileName) and the journal (ckpt.JournalName) live directly in
// the root; absorbed batch copies and quarantined batches get their
// own subdirectories.
const (
	AbsorbedDir   = "absorbed"
	QuarantineDir = "quarantine"
)

// Fingerprint identifies a batch by its content alone (FNV-64a over
// the raw bytes). The delivery name is deliberately excluded: the same
// bytes arriving under a different name is how a replay looks, and the
// journal records both the fingerprint and the name so the store can
// tell idempotent re-delivery (same name) from replay (new name).
func Fingerprint(data []byte) uint64 {
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64()
}

// RefusalClass is the typed reason a batch was refused.
type RefusalClass int

const (
	// RefusalDecode: the batch failed to parse as traceroute JSONL, or
	// parsed to zero traces.
	RefusalDecode RefusalClass = iota + 1
	// RefusalReplay: the batch's content fingerprint was already seen
	// under a different delivery name.
	RefusalReplay
	// RefusalBudget: the batch's malformed-record count blew through
	// the intake error budget.
	RefusalBudget
	// RefusalIO: a transient I/O failure persisted through bounded
	// retry with backoff.
	RefusalIO
)

func (c RefusalClass) String() string {
	switch c {
	case RefusalDecode:
		return "decode"
	case RefusalReplay:
		return "replay"
	case RefusalBudget:
		return "budget"
	case RefusalIO:
		return "io"
	}
	return fmt.Sprintf("refusal(%d)", int(c))
}

// Refusal is a typed batch rejection. It wraps the underlying cause
// (when there is one) so callers can errors.As through it.
type Refusal struct {
	Class RefusalClass
	// Batch is the delivery name of the refused batch.
	Batch string
	// FP is the batch's content fingerprint (0 when the content could
	// not be read at all).
	FP  uint64
	Err error
}

func (r *Refusal) Error() string {
	msg := fmt.Sprintf("delta: batch %s refused (%s)", r.Batch, r.Class)
	if r.Err != nil {
		msg += ": " + r.Err.Error()
	}
	return msg
}

func (r *Refusal) Unwrap() error { return r.Err }

// Status is a batch's position in the intake state machine.
type Status int

const (
	// StatusPending: an intent record was journaled but no terminal
	// record followed — the process died mid-apply.
	StatusPending Status = iota + 1
	// StatusApplied: the batch's annotations were published and the
	// applied record made it to the journal.
	StatusApplied
	// StatusQuarantined: the batch was refused and parked.
	StatusQuarantined
)

func (s Status) String() string {
	switch s {
	case StatusPending:
		return "pending"
	case StatusApplied:
		return "applied"
	case StatusQuarantined:
		return "quarantined"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// BatchState is everything the journal knows about one fingerprint.
type BatchState struct {
	Status Status
	FP     uint64
	// Name is the delivery name the fingerprint was first journaled
	// under.
	Name string
	// Traces is the batch's trace count as recorded in its intent.
	Traces int
	// AnnDigest is the annotation digest recorded when the batch was
	// applied (0 otherwise).
	AnnDigest uint64
	// Reason is the quarantine reason (empty otherwise).
	Reason string
}

// Decision is what the store tells the ingest loop to do with an
// arriving batch.
type Decision int

const (
	// Absorb: never seen — journal an intent and apply it.
	Absorb Decision = iota + 1
	// ResumeApply: an intent is journaled with no terminal record; the
	// previous attempt died mid-apply. Redo the apply (the delta
	// engine is deterministic, so the redo commits the same state).
	ResumeApply
	// Skip: already applied under this name; an idempotent
	// re-delivery. Nothing to do.
	Skip
	// SkipQuarantined: already quarantined under this name; the poison
	// verdict stands. Nothing to do.
	SkipQuarantined
	// Poison: this content was already journaled under a different
	// name — a replay. Quarantine it.
	Poison
)

func (d Decision) String() string {
	switch d {
	case Absorb:
		return "absorb"
	case ResumeApply:
		return "resume-apply"
	case Skip:
		return "skip"
	case SkipQuarantined:
		return "skip-quarantined"
	case Poison:
		return "poison"
	}
	return fmt.Sprintf("decision(%d)", int(d))
}

// Store is the durable intake state of one continuously-refined map:
// the journal, the per-fingerprint state folded from it, and the
// absorbed/quarantine directories. Open replays the journal; every
// mutation appends to it before updating the in-memory fold, so the
// in-memory view never gets ahead of what a crash would preserve.
type Store struct {
	// Dir is the store root. The refinement checkpoint (ckpt.FileName)
	// lives here too, so Dir doubles as the ckpt.Config directory.
	Dir     string
	journal *ckpt.Journal
	state   map[uint64]*BatchState
	order   []uint64 // fingerprints in first-journaled order
}

// Open creates (if needed) and opens the store at dir, replaying the
// intake journal into the per-batch state fold. A journal with a torn
// tail (the tail record's write was interrupted) is repaired by
// truncation; mid-file damage is refused by the journal layer.
func Open(dir string) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, AbsorbedDir), filepath.Join(dir, QuarantineDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("delta: creating store: %w", err)
		}
	}
	j, recs, err := ckpt.OpenJournal(filepath.Join(dir, ckpt.JournalName))
	if err != nil {
		return nil, err
	}
	s := &Store{Dir: dir, journal: j, state: make(map[uint64]*BatchState)}
	for _, rec := range recs {
		s.fold(rec)
	}
	return s, nil
}

// fold applies one journal record to the in-memory state. An intent
// never downgrades a terminal state: a re-delivered batch is decided
// before any intent is appended, so an intent following a terminal
// record for the same fingerprint can only be a historical ordering
// artifact, and the terminal verdict stands.
func (s *Store) fold(rec ckpt.JournalRecord) {
	st, ok := s.state[rec.FP]
	if !ok {
		st = &BatchState{FP: rec.FP, Name: rec.Name}
		s.state[rec.FP] = st
		s.order = append(s.order, rec.FP)
	}
	switch rec.Kind {
	case ckpt.JournalIntent:
		if st.Status == StatusApplied || st.Status == StatusQuarantined {
			return
		}
		st.Status = StatusPending
		st.Name = rec.Name
		st.Traces = rec.Traces
	case ckpt.JournalApplied:
		st.Status = StatusApplied
		st.AnnDigest = rec.AnnDigest
	case ckpt.JournalQuarantined:
		// Applied is just as terminal: a quarantine record for an
		// already-applied fingerprint (a replay journaled under the
		// victim's fingerprint by an older writer) must not un-apply
		// the batch the checkpoint lineage already carries.
		if st.Status == StatusApplied {
			return
		}
		st.Status = StatusQuarantined
		st.Reason = rec.Reason
	}
}

// Close releases the journal handle. The store's durable state is
// already on disk; Close exists so tests and long-lived daemons can
// release the descriptor.
func (s *Store) Close() error { return s.journal.Close() }

// State returns the journaled state of a fingerprint.
func (s *Store) State(fp uint64) (BatchState, bool) {
	st, ok := s.state[fp]
	if !ok {
		return BatchState{}, false
	}
	return *st, true
}

// Pending returns the batches whose intent has no terminal record, in
// journal order — the crash-interrupted applies a restart must redo.
func (s *Store) Pending() []BatchState {
	return s.byStatus(StatusPending)
}

// Applied returns the applied batches in journal order.
func (s *Store) Applied() []BatchState {
	return s.byStatus(StatusApplied)
}

// Quarantined returns the quarantined batches in journal order.
func (s *Store) Quarantined() []BatchState {
	return s.byStatus(StatusQuarantined)
}

func (s *Store) byStatus(want Status) []BatchState {
	var out []BatchState
	for _, fp := range s.order {
		if st := s.state[fp]; st.Status == want {
			out = append(out, *st)
		}
	}
	return out
}

// Decide classifies an arriving batch against the journal. It never
// mutates state: the ingest loop acts on the decision (Intent, Applied,
// Quarantine) and those appends are what move the machine.
func (s *Store) Decide(name string, fp uint64) Decision {
	st, ok := s.state[fp]
	if !ok {
		return Absorb
	}
	if st.Name != name {
		return Poison
	}
	switch st.Status {
	case StatusPending:
		return ResumeApply
	case StatusApplied:
		return Skip
	default:
		return SkipQuarantined
	}
}

// Intent journals the intent to apply a batch. After this record is
// durable, a crash at any later point resumes with ResumeApply instead
// of silently dropping or double-counting the batch.
func (s *Store) Intent(fp uint64, name string, traces int) error {
	rec := ckpt.JournalRecord{Kind: ckpt.JournalIntent, FP: fp, Name: name, Traces: traces}
	if err := s.journal.Append(rec); err != nil {
		return fmt.Errorf("delta: journaling intent for %s: %w", name, err)
	}
	s.fold(rec)
	return nil
}

// MarkApplied journals the terminal applied record: the batch's
// refinement state is checkpointed and its annotations published.
// annDigest is the published annotation digest, recorded so an
// operator can later audit which batch produced which output.
func (s *Store) MarkApplied(fp uint64, name string, annDigest uint64) error {
	rec := ckpt.JournalRecord{Kind: ckpt.JournalApplied, FP: fp, Name: name, AnnDigest: annDigest}
	if err := s.journal.Append(rec); err != nil {
		return fmt.Errorf("delta: journaling applied for %s: %w", name, err)
	}
	s.fold(rec)
	return nil
}

// Quarantine parks a refused batch: the raw bytes (when they were
// readable) and a human-readable reason file go into the quarantine
// directory with atomic-publish semantics, then the terminal journal
// record makes the verdict durable. A quarantined batch never blocks
// the batches behind it.
func (s *Store) Quarantine(ref *Refusal, data []byte) error {
	base := filepath.Join(s.Dir, QuarantineDir, s.quarantineBase(ref.FP))
	if data != nil {
		if err := ckpt.AtomicWrite(base+".jsonl", func(w io.Writer) error {
			_, err := w.Write(data)
			return err
		}); err != nil {
			return fmt.Errorf("delta: quarantining %s: %w", ref.Batch, err)
		}
	}
	if err := ckpt.AtomicWrite(base+".reason", func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "batch: %s\nfingerprint: %016x\nclass: %s\nerror: %v\n",
			ref.Batch, ref.FP, ref.Class, ref.Err)
		return err
	}); err != nil {
		return fmt.Errorf("delta: quarantining %s: %w", ref.Batch, err)
	}
	rec := ckpt.JournalRecord{Kind: ckpt.JournalQuarantined, FP: ref.FP, Name: ref.Batch, Reason: ref.Class.String()}
	if err := s.journal.Append(rec); err != nil {
		return fmt.Errorf("delta: journaling quarantine for %s: %w", ref.Batch, err)
	}
	s.fold(rec)
	return nil
}

// quarantineBase is the extension-less quarantine file stem for a
// fingerprint; the batch copy gets .jsonl, the verdict gets .reason.
func (s *Store) quarantineBase(fp uint64) string {
	return fmt.Sprintf("%016x", fp)
}

// AbsorbedPath is where an applied batch's durable copy lives. The
// copy is what rebuilds the merged corpus on restart: checkpoint
// lineage names the fingerprints, this directory holds their bytes.
func (s *Store) AbsorbedPath(fp uint64) string {
	return filepath.Join(s.Dir, AbsorbedDir, fmt.Sprintf("%016x.jsonl", fp))
}

// SaveAbsorbed publishes a batch's durable copy atomically. It runs
// after the intent record and before the apply, so a crash between the
// two finds the bytes it needs to redo the apply.
func (s *Store) SaveAbsorbed(fp uint64, data []byte) error {
	if err := ckpt.AtomicWrite(s.AbsorbedPath(fp), func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	}); err != nil {
		return fmt.Errorf("delta: saving absorbed copy: %w", err)
	}
	return nil
}

// BatchStats tallies a validated batch.
type BatchStats struct {
	Traces      int
	BadRecords  int
	Skipped     int
	DroppedHops int
}

// ValidateBatch parses data as traceroute JSONL line by line, tolerating
// up to maxBad malformed lines (the intake error budget). Exceeding the
// budget refuses the whole batch: *Refusal with RefusalDecode when the
// budget is zero (any malformed line is fatal), RefusalBudget when a
// nonzero budget was exhausted. A batch that parses to zero traces is a
// decode refusal — absorbing it would be a no-op that still consumes a
// lineage slot.
func ValidateBatch(name string, fp uint64, data []byte, maxBad int) ([]*traceroute.Trace, BatchStats, error) {
	var (
		stats  BatchStats
		traces []*traceroute.Trace
	)
	refuse := func(class RefusalClass, err error) ([]*traceroute.Trace, BatchStats, error) {
		return nil, stats, &Refusal{Class: class, Batch: name, FP: fp, Err: err}
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		st, err := traceroute.ReadJSONLStats(bytes.NewReader(line), func(t *traceroute.Trace) error {
			traces = append(traces, t)
			return nil
		})
		stats.Skipped += st.SkippedRecords
		stats.DroppedHops += st.DroppedHops
		if err != nil {
			stats.BadRecords++
			if stats.BadRecords > maxBad {
				if maxBad == 0 {
					return refuse(RefusalDecode, fmt.Errorf("line %d: %w", lineno, err))
				}
				return refuse(RefusalBudget, fmt.Errorf("%d malformed record(s) exceed budget %d (line %d: %w)",
					stats.BadRecords, maxBad, lineno, err))
			}
			continue
		}
		stats.Traces += st.Traces
	}
	if err := sc.Err(); err != nil {
		return refuse(RefusalDecode, err)
	}
	if stats.Traces == 0 {
		return refuse(RefusalDecode, errors.New("batch contains no traces"))
	}
	return traces, stats, nil
}
