package delta

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const goodBatch = `{"type":"trace","dst":"10.0.0.9","stop_reason":"COMPLETED","hops":[{"addr":"10.0.0.1","probe_ttl":1,"icmp_type":11},{"addr":"10.0.0.9","probe_ttl":2,"icmp_type":0}]}
{"type":"cycle-start"}
{"type":"trace","dst":"10.0.1.9","stop_reason":"COMPLETED","hops":[{"addr":"10.0.1.1","probe_ttl":1,"icmp_type":11}]}
`

func openStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestFingerprintContentOnly(t *testing.T) {
	a := Fingerprint([]byte(goodBatch))
	if a != Fingerprint([]byte(goodBatch)) {
		t.Fatal("fingerprint not deterministic")
	}
	if a == Fingerprint([]byte(goodBatch+"\n{}")) {
		t.Fatal("different content produced the same fingerprint")
	}
}

// TestStoreLifecycle walks one batch through the full state machine
// across store reopens — the journal, not process memory, must carry
// every transition.
func TestStoreLifecycle(t *testing.T) {
	dir := t.TempDir()
	fp := Fingerprint([]byte(goodBatch))

	s := openStore(t, dir)
	if d := s.Decide("b1.jsonl", fp); d != Absorb {
		t.Fatalf("fresh batch: Decide = %v, want absorb", d)
	}
	if err := s.Intent(fp, "b1.jsonl", 2); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Crash after intent: the reopened store must demand a redo.
	s = openStore(t, dir)
	if d := s.Decide("b1.jsonl", fp); d != ResumeApply {
		t.Fatalf("after intent: Decide = %v, want resume-apply", d)
	}
	pend := s.Pending()
	if len(pend) != 1 || pend[0].Name != "b1.jsonl" || pend[0].Traces != 2 {
		t.Fatalf("Pending = %+v", pend)
	}
	if err := s.MarkApplied(fp, "b1.jsonl", 0xfeed); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Re-delivery after apply: idempotent skip under the same name,
	// poison under any other.
	s = openStore(t, dir)
	if d := s.Decide("b1.jsonl", fp); d != Skip {
		t.Fatalf("applied batch re-delivered: Decide = %v, want skip", d)
	}
	if d := s.Decide("sneaky.jsonl", fp); d != Poison {
		t.Fatalf("applied content under new name: Decide = %v, want poison", d)
	}
	app := s.Applied()
	if len(app) != 1 || app[0].AnnDigest != 0xfeed {
		t.Fatalf("Applied = %+v", app)
	}
	if len(s.Pending()) != 0 {
		t.Fatalf("Pending after apply = %+v", s.Pending())
	}
	st, ok := s.State(fp)
	if !ok || st.Status != StatusApplied {
		t.Fatalf("State = %+v, %v", st, ok)
	}
}

func TestStoreQuarantine(t *testing.T) {
	dir := t.TempDir()
	data := []byte("not json at all\n")
	fp := Fingerprint(data)
	ref := &Refusal{Class: RefusalDecode, Batch: "bad.jsonl", FP: fp, Err: errors.New("line 1: bad")}

	s := openStore(t, dir)
	if err := s.Quarantine(ref, data); err != nil {
		t.Fatal(err)
	}

	// The quarantine directory holds the bytes and a reason file.
	got, err := os.ReadFile(filepath.Join(dir, QuarantineDir, s.quarantineBase(fp)+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatalf("quarantined bytes differ: %q", got)
	}
	reason, err := os.ReadFile(filepath.Join(dir, QuarantineDir, s.quarantineBase(fp)+".reason"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"bad.jsonl", "decode", "line 1: bad"} {
		if !strings.Contains(string(reason), want) {
			t.Errorf("reason file missing %q:\n%s", want, reason)
		}
	}
	s.Close()

	// The verdict survives a restart; same name skips, replay poisons.
	s = openStore(t, dir)
	if d := s.Decide("bad.jsonl", fp); d != SkipQuarantined {
		t.Fatalf("quarantined batch re-delivered: Decide = %v, want skip-quarantined", d)
	}
	if d := s.Decide("rename.jsonl", fp); d != Poison {
		t.Fatalf("quarantined content under new name: Decide = %v, want poison", d)
	}
	q := s.Quarantined()
	if len(q) != 1 || q[0].Reason != "decode" {
		t.Fatalf("Quarantined = %+v", q)
	}
}

// TestStorePendingUnderDifferentName: content journaled as pending and
// re-offered under another name is a replay, not a resume.
func TestStorePendingUnderDifferentName(t *testing.T) {
	s := openStore(t, t.TempDir())
	fp := Fingerprint([]byte(goodBatch))
	if err := s.Intent(fp, "b1.jsonl", 2); err != nil {
		t.Fatal(err)
	}
	if d := s.Decide("b2.jsonl", fp); d != Poison {
		t.Fatalf("pending content under new name: Decide = %v, want poison", d)
	}
}

func TestSaveAbsorbed(t *testing.T) {
	s := openStore(t, t.TempDir())
	fp := Fingerprint([]byte(goodBatch))
	if err := s.SaveAbsorbed(fp, []byte(goodBatch)); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(s.AbsorbedPath(fp))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != goodBatch {
		t.Fatal("absorbed copy differs from batch bytes")
	}
}

func TestValidateBatch(t *testing.T) {
	fp := uint64(7)
	traces, stats, err := ValidateBatch("b.jsonl", fp, []byte(goodBatch), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 || stats.Traces != 2 || stats.Skipped != 1 {
		t.Fatalf("traces=%d stats=%+v", len(traces), stats)
	}

	var ref *Refusal
	_, _, err = ValidateBatch("b.jsonl", fp, []byte("garbage\n"), 0)
	if !errors.As(err, &ref) || ref.Class != RefusalDecode || ref.FP != fp {
		t.Fatalf("garbage batch: %v", err)
	}
	_, _, err = ValidateBatch("b.jsonl", fp, nil, 0)
	if !errors.As(err, &ref) || ref.Class != RefusalDecode {
		t.Fatalf("empty batch: %v", err)
	}

	// One bad line inside a one-line budget passes; two blow it.
	mixed := goodBatch + "garbage\n"
	traces, stats, err = ValidateBatch("b.jsonl", fp, []byte(mixed), 1)
	if err != nil || len(traces) != 2 || stats.BadRecords != 1 {
		t.Fatalf("budgeted batch: traces=%d stats=%+v err=%v", len(traces), stats, err)
	}
	_, _, err = ValidateBatch("b.jsonl", fp, []byte(mixed+"more garbage\n"), 1)
	if !errors.As(err, &ref) || ref.Class != RefusalBudget {
		t.Fatalf("budget blowout: %v", err)
	}
}

// TestRetrierBackoff drives the retrier through a fake clock and pins
// the backoff contract: bounded attempts, delays in [d/2, d] with d
// doubling from Base and capped at Max, and a deterministic jitter
// stream per seed.
func TestRetrierBackoff(t *testing.T) {
	run := func(failures int) (sleeps []time.Duration, calls int, err error) {
		r := &Retrier{
			Attempts: 4,
			Base:     100 * time.Millisecond,
			Max:      300 * time.Millisecond,
			Seed:     42,
			Sleep:    func(d time.Duration) { sleeps = append(sleeps, d) },
		}
		err = r.Do(func() error {
			calls++
			if calls <= failures {
				return errors.New("transient")
			}
			return nil
		})
		return sleeps, calls, err
	}

	sleeps, calls, err := run(2)
	if err != nil || calls != 3 || len(sleeps) != 2 {
		t.Fatalf("recovering op: calls=%d sleeps=%d err=%v", calls, len(sleeps), err)
	}
	for i, want := range []time.Duration{100 * time.Millisecond, 200 * time.Millisecond} {
		if sleeps[i] < want/2 || sleeps[i] > want {
			t.Errorf("sleep %d = %v, want within [%v, %v]", i, sleeps[i], want/2, want)
		}
	}

	// Same seed, same stream: the schedule is reproducible.
	again, _, _ := run(2)
	for i := range sleeps {
		if sleeps[i] != again[i] {
			t.Errorf("jitter not deterministic: run1[%d]=%v run2[%d]=%v", i, sleeps[i], i, again[i])
		}
	}

	// Exhaustion returns the final error; the last failure does not sleep.
	sleeps, calls, err = run(10)
	if err == nil || calls != 4 || len(sleeps) != 3 {
		t.Fatalf("exhausted op: calls=%d sleeps=%d err=%v", calls, len(sleeps), err)
	}
	// The third backoff doubles past Max and must be capped by it.
	if cap := 300 * time.Millisecond; sleeps[2] < cap/2 || sleeps[2] > cap {
		t.Errorf("capped sleep = %v, want within [%v, %v]", sleeps[2], cap/2, cap)
	}
}

func TestRetrierOnRetry(t *testing.T) {
	var seen []int
	r := &Retrier{
		Attempts: 3,
		Sleep:    func(time.Duration) {},
		OnRetry:  func(attempt int, err error, backoff time.Duration) { seen = append(seen, attempt) },
	}
	boom := errors.New("boom")
	if err := r.Do(func() error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Do = %v", err)
	}
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Fatalf("OnRetry attempts = %v", seen)
	}
}
