// Package collect implements the data-collection component of bdrmap
// (paper §2): targeted traceroutes from a vantage point toward every
// prefix routed in the Internet, with *reactive* probing — when a trace
// might have found an off-path interface inside the target AS, or never
// reached the target's address space at all, additional addresses
// within the prefix are probed. Alias resolution (iffinder-style, then
// MIDAR) runs over the addresses discovered during collection, so the
// output bundle matches what bdrmap's inference stage (and bdrmapIT)
// consumes.
package collect

import (
	"net/netip"
	"sort"

	"repro/internal/alias"
	"repro/internal/asn"
	"repro/internal/ip2as"
	"repro/internal/netutil"
	"repro/internal/traceroute"
)

// Engine abstracts the probing substrate: a traceroute engine plus the
// alias-resolution probers. The simulator's per-VP engine implements
// it; a real deployment would wrap scamper.
type Engine interface {
	// Traceroute probes dst and returns the measurement (nil when the
	// destination is unroutable).
	Traceroute(dst netip.Addr) *traceroute.Trace
	alias.IPIDProber
	alias.UDPProber
}

// Options tunes the collection run.
type Options struct {
	// Resolver maps addresses to origin ASes (required).
	Resolver *ip2as.Resolver
	// MaxProbesPerPrefix caps the reactive re-probes of one prefix
	// (default 3, matching bdrmap's conservative budget).
	MaxProbesPerPrefix int
	// SkipAliases disables the alias-resolution stage.
	SkipAliases bool
}

func (o *Options) defaults() {
	if o.MaxProbesPerPrefix <= 0 {
		o.MaxProbesPerPrefix = 3
	}
}

// Result is the collection output: the trace archive and the alias
// sets resolved over the discovered addresses.
type Result struct {
	Traces  []*traceroute.Trace
	Aliases *alias.Sets
	// Reprobed counts prefixes that triggered reactive probing.
	Reprobed int
}

// Run collects traceroutes toward every target prefix. For each prefix
// the first probe goes to the first usable host address; a re-probe of
// other addresses in the prefix is triggered when the trace never
// showed an address originated by the prefix's own AS (the probe may
// have died early, or the border may have replied off-path), as
// bdrmap's reactive collection does.
func Run(eng Engine, prefixes []netip.Prefix, opts Options) *Result {
	opts.defaults()
	res := &Result{Aliases: alias.NewSets()}
	observed := make(map[netip.Addr]bool)

	record := func(t *traceroute.Trace) {
		if t == nil || len(t.Hops) == 0 {
			return
		}
		res.Traces = append(res.Traces, t)
		for _, h := range t.Hops {
			if !netutil.IsSpecial(h.Addr) {
				observed[h.Addr] = true
			}
		}
	}

	for _, p := range prefixes {
		targetAS := asn.None
		if opts.Resolver != nil {
			targetAS = opts.Resolver.Lookup(p.Addr()).Origin
		}
		probes := probeAddrs(p, opts.MaxProbesPerPrefix)
		if len(probes) == 0 {
			continue
		}
		t := eng.Traceroute(probes[0])
		record(t)
		if !needsReprobe(t, targetAS, opts.Resolver) {
			continue
		}
		res.Reprobed++
		for _, dst := range probes[1:] {
			t := eng.Traceroute(dst)
			record(t)
			if !needsReprobe(t, targetAS, opts.Resolver) {
				break
			}
		}
	}

	if !opts.SkipAliases {
		addrs := make([]netip.Addr, 0, len(observed))
		for a := range observed {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
		res.Aliases = alias.Merge(
			alias.MIDAR(eng, addrs, alias.MIDAROptions{}),
			alias.Iffinder(eng, addrs))
	}
	return res
}

// needsReprobe decides whether a trace warrants probing another address
// of the same prefix: the trace is empty, or no hop carried an address
// originated by the target AS (either the probe died before the border,
// or the border replied with an off-path address).
func needsReprobe(t *traceroute.Trace, targetAS asn.ASN, resolver *ip2as.Resolver) bool {
	if t == nil || len(t.Hops) == 0 {
		return true
	}
	if targetAS == asn.None || resolver == nil {
		return false // nothing to compare against
	}
	if t.ReachedDst() {
		return false
	}
	for _, h := range t.Hops {
		if resolver.Lookup(h.Addr).Origin == targetAS {
			return false
		}
	}
	return true
}

// probeAddrs yields up to max distinct host addresses spread across the
// prefix (first, middle, last-ish), the probing pattern bdrmap uses to
// hit different subnets of a target prefix.
func probeAddrs(p netip.Prefix, max int) []netip.Addr {
	a := p.Addr().Unmap()
	if !a.Is4() {
		// IPv6 prefixes: probe ::1 only (the simulator's v6 support
		// routes on the prefix, not the host bits).
		host := p.Addr().Next()
		if p.Contains(host) {
			return []netip.Addr{host}
		}
		return nil
	}
	size := netutil.PrefixSize(p)
	if size <= 2 {
		return []netip.Addr{a}
	}
	offsets := []uint32{1, uint32(size / 2), uint32(size - 2)}
	var out []netip.Addr
	seen := make(map[netip.Addr]bool)
	for _, off := range offsets {
		if len(out) >= max {
			break
		}
		addr := netutil.NthAddr(p, off)
		if addr.IsValid() && !seen[addr] {
			seen[addr] = true
			out = append(out, addr)
		}
	}
	return out
}
