package collect

import (
	"net/netip"
	"testing"

	"repro/internal/alias"
	"repro/internal/asn"
	"repro/internal/baseline/bdrmap"
	"repro/internal/core"
	"repro/internal/topo"
)

func testWorld(t *testing.T) (*topo.Internet, Engine, Options) {
	t.Helper()
	in, err := topo.Generate(topo.SmallConfig(17))
	if err != nil {
		t.Fatal(err)
	}
	vps := in.SelectVPs(1, asn.NewSet())
	if len(vps) == 0 {
		t.Fatal("no VP")
	}
	eng := in.Engine(vps[0])
	return in, eng, Options{Resolver: in.Resolver()}
}

func TestRunCollectsEveryPrefix(t *testing.T) {
	in, eng, opts := testWorld(t)
	prefixes := in.RoutedPrefixes()
	res := Run(eng, prefixes, opts)
	if len(res.Traces) < len(prefixes)/2 {
		t.Fatalf("only %d traces for %d prefixes", len(res.Traces), len(prefixes))
	}
	// Collection must include traces beyond one per prefix when the
	// reactive condition triggers.
	if res.Reprobed == 0 {
		t.Log("no reactive probes triggered on this seed (acceptable)")
	} else if len(res.Traces) <= len(prefixes)-res.Reprobed {
		t.Errorf("reactive probes did not add traces: %d traces, %d prefixes, %d reprobed",
			len(res.Traces), len(prefixes), res.Reprobed)
	}
	for _, tr := range res.Traces {
		if err := tr.Validate(); err != nil {
			t.Fatalf("invalid collected trace: %v", err)
		}
	}
}

func TestRunResolvesAliases(t *testing.T) {
	_, eng, opts := testWorld(t)
	res := Run(eng, []netip.Prefix{}, opts)
	if res.Aliases == nil {
		t.Fatal("nil aliases")
	}
	_, eng2, opts2 := testWorld(t)
	opts2.SkipAliases = true
	res2 := Run(eng2, []netip.Prefix{}, opts2)
	if res2.Aliases.NumAddrs() != 0 {
		t.Error("SkipAliases still resolved")
	}
}

// TestCollectionFeedsBdrmap runs the full single-VP bdrmap pipeline the
// way the original system did: reactive collection, then inference.
func TestCollectionFeedsBdrmap(t *testing.T) {
	in, eng, opts := testWorld(t)
	vps := in.SelectVPs(1, asn.NewSet())
	res := Run(eng, in.RoutedPrefixes(), opts)
	if len(res.Traces) == 0 {
		t.Fatal("no traces collected")
	}
	rels := in.Rels // ground-truth relationships suffice for the smoke test
	b := bdrmap.Infer(res.Traces, opts.Resolver, res.Aliases, rels,
		bdrmap.Options{VPAS: vps[0].AS.ASN})
	if len(b.Neighbors()) == 0 {
		t.Error("no neighbors inferred from collected data")
	}
	_ = core.Options{}
	_ = alias.Sets{}
}

func TestNeedsReprobe(t *testing.T) {
	in, _, opts := testWorld(t)
	_ = in
	if !needsReprobe(nil, 100, opts.Resolver) {
		t.Error("nil trace should reprobe")
	}
}

func TestProbeAddrsSpread(t *testing.T) {
	p := netip.MustParsePrefix("20.0.0.0/24")
	got := probeAddrs(p, 3)
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	seen := map[netip.Addr]bool{}
	for _, a := range got {
		if !p.Contains(a) {
			t.Errorf("addr %v outside prefix", a)
		}
		if seen[a] {
			t.Errorf("duplicate probe %v", a)
		}
		seen[a] = true
	}
	// /31: single probe at the network address.
	if got := probeAddrs(netip.MustParsePrefix("20.0.0.0/31"), 3); len(got) != 1 {
		t.Errorf("/31 probes = %v", got)
	}
}
