package bgp

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"

	"repro/internal/asn"
)

const sampleRIB = `
# comment line
8.0.0.0/8|3356 3356 3356 15169
8.8.8.0/24|174 15169
10.10.0.0/16|64496 {64500,64501}
2001:db8::/32|6939 64499
`

func TestReadRoutes(t *testing.T) {
	routes, err := ReadRoutes(strings.NewReader(sampleRIB))
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 4 {
		t.Fatalf("got %d routes", len(routes))
	}
	if routes[0].Prefix != netip.MustParsePrefix("8.0.0.0/8") {
		t.Errorf("prefix = %v", routes[0].Prefix)
	}
	if got := routes[0].Origins(); len(got) != 1 || got[0] != 15169 {
		t.Errorf("origins = %v", got)
	}
	// AS_SET origin yields every member.
	if got := routes[2].Origins(); len(got) != 2 || got[0] != 64500 || got[1] != 64501 {
		t.Errorf("AS_SET origins = %v", got)
	}
}

func TestReadRoutesErrors(t *testing.T) {
	cases := []string{
		"8.0.0.0/8 3356",       // missing pipe
		"not-a-prefix|3356",    // bad prefix
		"8.0.0.0/8|",           // empty path
		"8.0.0.0/8|33x6",       // bad asn
		"8.0.0.0/8|{}",         // empty set
		"8.0.0.0/8|3356 {1,x}", // bad set member
	}
	for _, c := range cases {
		if _, err := ReadRoutes(strings.NewReader(c)); err == nil {
			t.Errorf("expected error for %q", c)
		}
	}
}

func TestASPathCleaning(t *testing.T) {
	path, err := ParsePath("3356 3356 174 {64500,64501} 174")
	if err != nil {
		t.Fatal(err)
	}
	r := Route{Path: path}
	got := r.ASPath()
	want := []asn.ASN{3356, 174, 64500, 174}
	if len(got) != len(want) {
		t.Fatalf("ASPath = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ASPath = %v, want %v", got, want)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	routes, err := ReadRoutes(strings.NewReader(sampleRIB))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRoutes(&buf, routes); err != nil {
		t.Fatal(err)
	}
	again, err := ReadRoutes(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(routes) {
		t.Fatalf("round trip count %d != %d", len(again), len(routes))
	}
	for i := range routes {
		if routes[i].Prefix != again[i].Prefix {
			t.Errorf("route %d prefix mismatch", i)
		}
		if len(routes[i].Path) != len(again[i].Path) {
			t.Errorf("route %d path length mismatch", i)
		}
	}
}

func TestTableLongestPrefixMatch(t *testing.T) {
	routes, _ := ReadRoutes(strings.NewReader(sampleRIB))
	tbl := NewTable(routes)
	origin, p, ok := tbl.Origin(netip.MustParseAddr("8.8.8.8"))
	if !ok || origin != 15169 || p != netip.MustParsePrefix("8.8.8.0/24") {
		t.Errorf("LPM: %v %v %v", origin, p, ok)
	}
	origin, p, ok = tbl.Origin(netip.MustParseAddr("8.1.1.1"))
	if !ok || origin != 15169 || p.Bits() != 8 {
		t.Errorf("covering: %v %v %v", origin, p, ok)
	}
	if _, _, ok := tbl.Origin(netip.MustParseAddr("9.9.9.9")); ok {
		t.Error("miss expected")
	}
}

func TestTableMOAS(t *testing.T) {
	rib := `
198.51.100.0/24|3356 64496
198.51.100.0/24|174 64496
198.51.100.0/24|1299 64497
`
	routes, _ := ReadRoutes(strings.NewReader(rib))
	tbl := NewTable(routes)
	// 64496 announced twice, 64497 once: dominant origin wins.
	origin, _, ok := tbl.Origin(netip.MustParseAddr("198.51.100.1"))
	if !ok || origin != 64496 {
		t.Errorf("dominant origin = %v", origin)
	}
	all, _, _ := tbl.Origins(netip.MustParseAddr("198.51.100.1"))
	if len(all) != 2 || all[0] != 64496 || all[1] != 64497 {
		t.Errorf("all origins = %v", all)
	}
}

func TestTableMOASTieBreaksLowASN(t *testing.T) {
	rib := `
198.51.100.0/24|3356 64497
198.51.100.0/24|174 64496
`
	routes, _ := ReadRoutes(strings.NewReader(rib))
	tbl := NewTable(routes)
	origin, _, _ := tbl.Origin(netip.MustParseAddr("198.51.100.1"))
	if origin != 64496 {
		t.Errorf("tie should pick smaller ASN, got %v", origin)
	}
}

func TestCoversPrefix(t *testing.T) {
	routes, _ := ReadRoutes(strings.NewReader(sampleRIB))
	tbl := NewTable(routes)
	if !tbl.CoversPrefix(netip.MustParsePrefix("8.1.0.0/16")) {
		t.Error("covered /16 not detected")
	}
	if tbl.CoversPrefix(netip.MustParsePrefix("9.0.0.0/16")) {
		t.Error("uncovered /16 reported covered")
	}
}

func TestTableCounts(t *testing.T) {
	routes, _ := ReadRoutes(strings.NewReader(sampleRIB))
	tbl := NewTable(routes)
	if tbl.NumRoutes() != 4 {
		t.Errorf("NumRoutes = %d", tbl.NumRoutes())
	}
	if tbl.NumPrefixes() != 4 {
		t.Errorf("NumPrefixes = %d", tbl.NumPrefixes())
	}
}

func TestTableWalk(t *testing.T) {
	routes, _ := ReadRoutes(strings.NewReader(sampleRIB))
	tbl := NewTable(routes)
	n := 0
	tbl.Walk(func(p netip.Prefix, origin asn.ASN) bool {
		n++
		return true
	})
	if n != 4 {
		t.Errorf("walk visited %d", n)
	}
}
