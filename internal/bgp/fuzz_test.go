package bgp

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadRoutes asserts the RIB parser never panics and that whatever
// parses also survives a write/read round trip.
func FuzzReadRoutes(f *testing.F) {
	f.Add("8.0.0.0/8|3356 15169\n")
	f.Add("10.0.0.0/16|64496 {64500,64501}\n")
	f.Add("# comment\n\nbad line\n")
	f.Add("8.8.8.0/24|")
	f.Fuzz(func(t *testing.T, in string) {
		routes, err := ReadRoutes(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteRoutes(&buf, routes); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		again, err := ReadRoutes(&buf)
		if err != nil {
			t.Fatalf("reread: %v", err)
		}
		if len(again) != len(routes) {
			t.Fatalf("round trip %d != %d", len(again), len(routes))
		}
	})
}
