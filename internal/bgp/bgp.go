// Package bgp models the global routing table view that bdrmapIT derives
// its interface origin ASes from (paper §4.1). It parses RIB dumps in a
// pipe-separated text form ("prefix|as path"), extracts origin ASes
// (handling path prepending, AS_SETs, and MOAS prefixes), and answers
// longest-prefix-match origin queries via a radix trie.
package bgp

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strings"

	"repro/internal/asn"
	"repro/internal/iptrie"
)

// Route is one RIB entry: a prefix and the AS path it was announced with.
// Path[0] is the collector-adjacent AS; the origin is the final element.
// A path element may be an AS_SET, in which case SetMembers holds the
// members and the element's ASN is asn.None.
type Route struct {
	Prefix netip.Prefix
	Path   []PathElem
}

// PathElem is one AS-path element: either a plain ASN or an AS_SET.
type PathElem struct {
	AS  asn.ASN
	Set []asn.ASN // non-nil for AS_SET elements
}

// IsSet reports whether the element is an AS_SET.
func (e PathElem) IsSet() bool { return e.Set != nil }

// Origins returns the origin AS(es) of the route: the members of the last
// path element. A trailing AS_SET yields all members.
func (r Route) Origins() []asn.ASN {
	if len(r.Path) == 0 {
		return nil
	}
	last := r.Path[len(r.Path)-1]
	if last.IsSet() {
		return last.Set
	}
	return []asn.ASN{last.AS}
}

// ASPath returns the path with AS_SETs flattened and consecutive
// duplicates (prepending) removed. AS-relationship inference consumes
// these cleaned paths.
func (r Route) ASPath() []asn.ASN {
	out := make([]asn.ASN, 0, len(r.Path))
	for _, e := range r.Path {
		if e.IsSet() {
			// AS_SETs end relationship inference; represent by first member.
			if len(e.Set) > 0 {
				if len(out) == 0 || out[len(out)-1] != e.Set[0] {
					out = append(out, e.Set[0])
				}
			}
			continue
		}
		if len(out) > 0 && out[len(out)-1] == e.AS {
			continue
		}
		out = append(out, e.AS)
	}
	return out
}

// ParsePath parses a space-separated AS path such as
// "3356 174 {64512,64513}".
func ParsePath(s string) ([]PathElem, error) {
	fields := strings.Fields(s)
	out := make([]PathElem, 0, len(fields))
	for _, f := range fields {
		if strings.HasPrefix(f, "{") {
			inner := strings.Trim(f, "{}")
			if inner == "" {
				return nil, fmt.Errorf("bgp: empty AS_SET in path %q", s)
			}
			var set []asn.ASN
			for _, m := range strings.Split(inner, ",") {
				a, err := asn.Parse(strings.TrimSpace(m))
				if err != nil {
					return nil, fmt.Errorf("bgp: AS_SET member: %w", err)
				}
				set = append(set, a)
			}
			sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
			out = append(out, PathElem{Set: set})
			continue
		}
		a, err := asn.Parse(f)
		if err != nil {
			return nil, fmt.Errorf("bgp: path element: %w", err)
		}
		out = append(out, PathElem{AS: a})
	}
	return out, nil
}

// ReadStats tallies what a RIB scan consumed versus skipped.
type ReadStats struct {
	// Routes is the number of routes parsed.
	Routes int
	// SkippedLines counts blank and comment lines.
	SkippedLines int
}

// ReadRoutes reads a RIB dump: one route per line, "prefix|as path".
// Blank lines and lines starting with '#' are skipped.
func ReadRoutes(r io.Reader) ([]Route, error) {
	routes, _, err := ReadRoutesStats(r)
	return routes, err
}

// ReadRoutesStats is ReadRoutes returning skip tallies alongside the
// parsed routes.
func ReadRoutesStats(r io.Reader) ([]Route, ReadStats, error) {
	var stats ReadStats
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Route
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			stats.SkippedLines++
			continue
		}
		pfxStr, pathStr, ok := strings.Cut(line, "|")
		if !ok {
			return nil, stats, fmt.Errorf("bgp: line %d: missing '|' separator", lineno)
		}
		p, err := netip.ParsePrefix(strings.TrimSpace(pfxStr))
		if err != nil {
			return nil, stats, fmt.Errorf("bgp: line %d: %w", lineno, err)
		}
		path, err := ParsePath(pathStr)
		if err != nil {
			return nil, stats, fmt.Errorf("bgp: line %d: %w", lineno, err)
		}
		if len(path) == 0 {
			return nil, stats, fmt.Errorf("bgp: line %d: empty AS path", lineno)
		}
		out = append(out, Route{Prefix: p.Masked(), Path: path})
		stats.Routes++
	}
	if err := sc.Err(); err != nil {
		return nil, stats, fmt.Errorf("bgp: read: %w", err)
	}
	return out, stats, nil
}

// WriteRoutes writes routes in the format ReadRoutes accepts.
func WriteRoutes(w io.Writer, routes []Route) error {
	bw := bufio.NewWriter(w)
	for _, rt := range routes {
		var sb strings.Builder
		sb.WriteString(rt.Prefix.String())
		sb.WriteByte('|')
		for i, e := range rt.Path {
			if i > 0 {
				sb.WriteByte(' ')
			}
			if e.IsSet() {
				sb.WriteByte('{')
				for j, m := range e.Set {
					if j > 0 {
						sb.WriteByte(',')
					}
					fmt.Fprintf(&sb, "%d", uint32(m))
				}
				sb.WriteByte('}')
			} else {
				fmt.Fprintf(&sb, "%d", uint32(e.AS))
			}
		}
		sb.WriteByte('\n')
		if _, err := bw.WriteString(sb.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// originEntry accumulates per-prefix origin observations. MOAS prefixes
// (announced by multiple origins) keep every origin with a count so the
// table can answer deterministically with the dominant origin.
type originEntry struct {
	counts map[asn.ASN]int
}

// Table answers longest-prefix-match origin-AS queries (paper §4.1:
// "we use the longest matching prefix from the route announcements").
type Table struct {
	trie      *iptrie.Trie[*originEntry]
	numRoutes int
}

// NewTable builds an origin table from RIB routes.
func NewTable(routes []Route) *Table {
	t := &Table{trie: iptrie.New[*originEntry]()}
	for _, r := range routes {
		t.Add(r)
	}
	return t
}

// Add incorporates one route into the table.
func (t *Table) Add(r Route) {
	origins := r.Origins()
	if len(origins) == 0 {
		return
	}
	t.numRoutes++
	t.trie.Update(r.Prefix, func(e *originEntry, ok bool) *originEntry {
		if !ok {
			e = &originEntry{counts: make(map[asn.ASN]int, 1)}
		}
		for _, o := range origins {
			e.counts[o]++
		}
		return e
	})
}

// NumRoutes returns the number of routes added.
func (t *Table) NumRoutes() int { return t.numRoutes }

// NumPrefixes returns the number of distinct prefixes in the table.
func (t *Table) NumPrefixes() int { return t.trie.Len() }

// Origin returns the origin AS for addr using longest-prefix match.
// For MOAS prefixes it returns the origin with the most announcements,
// breaking ties toward the smallest ASN. ok is false when no prefix
// covers addr.
func (t *Table) Origin(addr netip.Addr) (origin asn.ASN, match netip.Prefix, ok bool) {
	e, p, ok := t.trie.Lookup(addr)
	if !ok {
		return asn.None, netip.Prefix{}, false
	}
	best, bestN := asn.None, -1
	for a, n := range e.counts {
		if n > bestN || (n == bestN && a < best) {
			best, bestN = a, n
		}
	}
	return best, p, true
}

// Origins returns every origin AS announced for the longest matching
// prefix, sorted ascending.
func (t *Table) Origins(addr netip.Addr) ([]asn.ASN, netip.Prefix, bool) {
	e, p, ok := t.trie.Lookup(addr)
	if !ok {
		return nil, netip.Prefix{}, false
	}
	out := make([]asn.ASN, 0, len(e.counts))
	for a := range e.counts {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, p, true
}

// CoversPrefix reports whether any announced prefix contains all of p.
// The RIR fallback uses it to honour "we only use the prefixes from RIR
// delegations not already covered by a BGP prefix" (paper §4.1).
func (t *Table) CoversPrefix(p netip.Prefix) bool {
	return t.trie.CoveredByPrefix(p)
}

// Walk visits every (prefix, dominant origin) pair in the table.
func (t *Table) Walk(f func(p netip.Prefix, origin asn.ASN) bool) {
	t.trie.Walk(func(p netip.Prefix, e *originEntry) bool {
		best, bestN := asn.None, -1
		for a, n := range e.counts {
			if n > bestN || (n == bestN && a < best) {
				best, bestN = a, n
			}
		}
		return f(p, best)
	})
}
