package iptrie

import (
	"fmt"
	"net/netip"
	"sync"
	"testing"
)

// The parallel refinement engine performs longest-prefix lookups from
// many goroutines at once while the trie is no longer being mutated —
// the read-only contract documented on Trie. This test hammers that
// pattern so `go test -race ./internal/iptrie/...` can observe any
// unsynchronized mutation a future change might introduce.
func TestConcurrentReaders(t *testing.T) {
	tr := New[int]()
	var prefixes []netip.Prefix
	for i := 0; i < 64; i++ {
		for _, bits := range []int{16, 20, 24} {
			p := netip.MustParsePrefix(fmt.Sprintf("10.%d.0.0/%d", i, bits))
			prefixes = append(prefixes, p.Masked())
			tr.Insert(p, i*100+bits)
		}
	}
	tr.Insert(netip.MustParsePrefix("2001:db8::/32"), -1)

	const readers = 16
	const lookupsPerReader = 2000
	var wg sync.WaitGroup
	wg.Add(readers)
	errs := make([]error, readers) // each reader writes only its own slot
	for r := 0; r < readers; r++ {
		go func(r int) {
			defer wg.Done()
			for i := 0; i < lookupsPerReader; i++ {
				// Mix every read entry point, as refinement does.
				a := netip.AddrFrom4([4]byte{10, byte((r + i) % 64), byte(i), byte(i >> 8)})
				v, match, ok := tr.Lookup(a)
				if !ok {
					errs[r] = fmt.Errorf("lookup %s: no match", a)
					return
				}
				if !match.Contains(a) {
					errs[r] = fmt.Errorf("lookup %s: match %s does not contain it", a, match)
					return
				}
				if v%100 != match.Bits() {
					errs[r] = fmt.Errorf("lookup %s: value %d inconsistent with /%d", a, v, match.Bits())
					return
				}
				if !tr.Covered(a) {
					errs[r] = fmt.Errorf("covered(%s) = false after successful lookup", a)
					return
				}
				p := prefixes[(r*31+i)%len(prefixes)]
				if _, ok := tr.Get(p); !ok {
					errs[r] = fmt.Errorf("get(%s): inserted prefix missing", p)
					return
				}
				if !tr.CoveredByPrefix(p) {
					errs[r] = fmt.Errorf("coveredByPrefix(%s) = false", p)
					return
				}
			}
		}(r)
	}
	// One goroutine walks while the others look up.
	var walkErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		n := 0
		tr.Walk(func(netip.Prefix, int) bool { n++; return true })
		if n != tr.Len() {
			walkErr = fmt.Errorf("walk visited %d prefixes, len is %d", n, tr.Len())
		}
	}()
	wg.Wait()
	for _, err := range append(errs, walkErr) {
		if err != nil {
			t.Fatal(err)
		}
	}
}
