// Package iptrie implements a generic binary radix trie keyed by IP
// prefixes, supporting exact insert and longest-prefix-match lookups for
// both IPv4 and IPv6. It is the substrate under the BGP table, the RIR
// delegation index, and the IXP prefix set.
package iptrie

import (
	"net/netip"
)

// node is one binary trie node. Children are indexed by the next bit of
// the key. A node carries a value only when set is true; interior nodes
// created on the way down are value-less.
type node[V any] struct {
	child [2]*node[V]
	value V
	set   bool
}

// Trie maps IP prefixes to values with longest-prefix-match semantics.
// The zero value is ready to use. IPv4 and IPv6 live in separate roots so
// 4-in-6 mapped addresses never collide with native IPv6 space.
//
// A Trie is safe for any number of concurrent readers (Lookup, Get,
// Covered, CoveredByPrefix, Walk, Len) once mutation (Insert, Update)
// has stopped — the access pattern of the parallel inference engine,
// which builds the tries during input loading and then only reads. It
// is not safe to mutate concurrently with any other access.
type Trie[V any] struct {
	v4, v6 *node[V]
	length int
}

// New returns an empty trie.
func New[V any]() *Trie[V] { return &Trie[V]{} }

// Len returns the number of distinct prefixes stored.
func (t *Trie[V]) Len() int { return t.length }

func (t *Trie[V]) root(is4 bool, create bool) *node[V] {
	if is4 {
		if t.v4 == nil && create {
			t.v4 = &node[V]{}
		}
		return t.v4
	}
	if t.v6 == nil && create {
		t.v6 = &node[V]{}
	}
	return t.v6
}

// bitAt returns bit i (0 = most significant) of the address a.
func bitAt(a netip.Addr, i int) int {
	s := a.AsSlice()
	return int(s[i/8]>>(7-i%8)) & 1
}

// Insert stores value under prefix p, replacing any existing value for
// exactly p. It reports whether the prefix was newly inserted.
func (t *Trie[V]) Insert(p netip.Prefix, value V) bool {
	p = p.Masked()
	a := p.Addr().Unmap()
	n := t.root(a.Is4(), true)
	for i := 0; i < p.Bits(); i++ {
		b := bitAt(a, i)
		if n.child[b] == nil {
			n.child[b] = &node[V]{}
		}
		n = n.child[b]
	}
	fresh := !n.set
	n.value = value
	n.set = true
	if fresh {
		t.length++
	}
	return fresh
}

// Update looks up the value stored for exactly p, applies f to it
// (f receives the zero value and ok=false when absent), and stores the
// result. It is the read-modify-write primitive used for MOAS origin sets.
func (t *Trie[V]) Update(p netip.Prefix, f func(old V, ok bool) V) {
	p = p.Masked()
	a := p.Addr().Unmap()
	n := t.root(a.Is4(), true)
	for i := 0; i < p.Bits(); i++ {
		b := bitAt(a, i)
		if n.child[b] == nil {
			n.child[b] = &node[V]{}
		}
		n = n.child[b]
	}
	n.value = f(n.value, n.set)
	if !n.set {
		n.set = true
		t.length++
	}
}

// Get returns the value stored for exactly p.
func (t *Trie[V]) Get(p netip.Prefix) (V, bool) {
	var zero V
	p = p.Masked()
	a := p.Addr().Unmap()
	n := t.root(a.Is4(), false)
	if n == nil {
		return zero, false
	}
	for i := 0; i < p.Bits(); i++ {
		n = n.child[bitAt(a, i)]
		if n == nil {
			return zero, false
		}
	}
	if !n.set {
		return zero, false
	}
	return n.value, true
}

// Lookup returns the value and prefix of the longest stored prefix
// containing addr, or ok=false when no stored prefix covers it.
func (t *Trie[V]) Lookup(addr netip.Addr) (value V, match netip.Prefix, ok bool) {
	var zero V
	a := addr.Unmap()
	n := t.root(a.Is4(), false)
	if n == nil {
		return zero, netip.Prefix{}, false
	}
	maxBits := 128
	if a.Is4() {
		maxBits = 32
	}
	var (
		best     V
		bestLen  = -1
		haveBest bool
	)
	for i := 0; ; i++ {
		if n.set {
			best = n.value
			bestLen = i
			haveBest = true
		}
		if i == maxBits {
			break
		}
		n = n.child[bitAt(a, i)]
		if n == nil {
			break
		}
	}
	if !haveBest {
		return zero, netip.Prefix{}, false
	}
	return best, netip.PrefixFrom(a, bestLen).Masked(), true
}

// Covered reports whether any stored prefix contains addr.
func (t *Trie[V]) Covered(addr netip.Addr) bool {
	_, _, ok := t.Lookup(addr)
	return ok
}

// CoveredByPrefix reports whether any stored prefix contains all of p,
// i.e. a stored prefix at least as short as p lies on p's path.
func (t *Trie[V]) CoveredByPrefix(p netip.Prefix) bool {
	p = p.Masked()
	a := p.Addr().Unmap()
	n := t.root(a.Is4(), false)
	if n == nil {
		return false
	}
	for i := 0; ; i++ {
		if n.set {
			return true
		}
		if i == p.Bits() {
			return false
		}
		n = n.child[bitAt(a, i)]
		if n == nil {
			return false
		}
	}
}

// Walk visits every stored prefix/value pair in lexicographic bit order
// (IPv4 first, then IPv6). Walk stops early if f returns false.
func (t *Trie[V]) Walk(f func(p netip.Prefix, v V) bool) {
	var walk func(n *node[V], addr [16]byte, depth int, is4 bool) bool
	walk = func(n *node[V], addr [16]byte, depth int, is4 bool) bool {
		if n == nil {
			return true
		}
		if n.set {
			var p netip.Prefix
			if is4 {
				var a4 [4]byte
				copy(a4[:], addr[:4])
				p = netip.PrefixFrom(netip.AddrFrom4(a4), depth)
			} else {
				p = netip.PrefixFrom(netip.AddrFrom16(addr), depth)
			}
			if !f(p, n.value) {
				return false
			}
		}
		if !walk(n.child[0], addr, depth+1, is4) {
			return false
		}
		addr[depth/8] |= 1 << (7 - depth%8)
		return walk(n.child[1], addr, depth+1, is4)
	}
	if !walk(t.v4, [16]byte{}, 0, true) {
		return
	}
	walk(t.v6, [16]byte{}, 0, false)
}
