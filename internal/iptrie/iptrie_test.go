package iptrie

import (
	"math/rand"
	"net/netip"
	"sort"
	"testing"
)

func TestInsertLookup(t *testing.T) {
	tr := New[int]()
	tr.Insert(netip.MustParsePrefix("10.0.0.0/8"), 1)
	tr.Insert(netip.MustParsePrefix("10.1.0.0/16"), 2)
	tr.Insert(netip.MustParsePrefix("10.1.2.0/24"), 3)

	cases := []struct {
		addr string
		want int
		pfx  string
	}{
		{"10.1.2.3", 3, "10.1.2.0/24"},
		{"10.1.3.3", 2, "10.1.0.0/16"},
		{"10.2.3.4", 1, "10.0.0.0/8"},
	}
	for _, c := range cases {
		v, p, ok := tr.Lookup(netip.MustParseAddr(c.addr))
		if !ok || v != c.want || p != netip.MustParsePrefix(c.pfx) {
			t.Errorf("Lookup(%s) = %d,%v,%v; want %d,%s", c.addr, v, p, ok, c.want, c.pfx)
		}
	}
	if _, _, ok := tr.Lookup(netip.MustParseAddr("11.0.0.1")); ok {
		t.Error("lookup outside all prefixes should miss")
	}
}

func TestLookupEmptyAndV6Separation(t *testing.T) {
	tr := New[string]()
	if _, _, ok := tr.Lookup(netip.MustParseAddr("1.2.3.4")); ok {
		t.Error("empty trie should miss")
	}
	tr.Insert(netip.MustParsePrefix("10.0.0.0/8"), "v4")
	tr.Insert(netip.MustParsePrefix("2001:db8::/32"), "v6")
	if v, _, ok := tr.Lookup(netip.MustParseAddr("2001:db8::1")); !ok || v != "v6" {
		t.Errorf("v6 lookup: %v %v", v, ok)
	}
	if _, _, ok := tr.Lookup(netip.MustParseAddr("2001:db9::1")); ok {
		t.Error("v6 miss expected")
	}
	// 4-in-6 mapped address must resolve in the v4 root.
	mapped := netip.AddrFrom16(netip.MustParseAddr("10.1.1.1").As16())
	if v, _, ok := tr.Lookup(mapped); !ok || v != "v4" {
		t.Errorf("mapped lookup: %v %v", v, ok)
	}
}

func TestDefaultRoute(t *testing.T) {
	tr := New[int]()
	tr.Insert(netip.MustParsePrefix("0.0.0.0/0"), 99)
	v, p, ok := tr.Lookup(netip.MustParseAddr("8.8.8.8"))
	if !ok || v != 99 || p.Bits() != 0 {
		t.Errorf("default route lookup: %d %v %v", v, p, ok)
	}
}

func TestInsertReplaceAndLen(t *testing.T) {
	tr := New[int]()
	p := netip.MustParsePrefix("192.0.2.0/24")
	if !tr.Insert(p, 1) {
		t.Error("first insert should be fresh")
	}
	if tr.Insert(p, 2) {
		t.Error("second insert should replace")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1", tr.Len())
	}
	if v, ok := tr.Get(p); !ok || v != 2 {
		t.Errorf("Get = %d,%v", v, ok)
	}
}

func TestGetExact(t *testing.T) {
	tr := New[int]()
	tr.Insert(netip.MustParsePrefix("10.0.0.0/8"), 1)
	if _, ok := tr.Get(netip.MustParsePrefix("10.0.0.0/16")); ok {
		t.Error("Get should not match shorter stored prefix")
	}
	if v, ok := tr.Get(netip.MustParsePrefix("10.0.0.0/8")); !ok || v != 1 {
		t.Errorf("exact Get failed: %d %v", v, ok)
	}
}

func TestUpdate(t *testing.T) {
	tr := New[[]int]()
	p := netip.MustParsePrefix("10.0.0.0/8")
	tr.Update(p, func(old []int, ok bool) []int {
		if ok {
			t.Error("first update should see absent value")
		}
		return append(old, 1)
	})
	tr.Update(p, func(old []int, ok bool) []int {
		if !ok || len(old) != 1 {
			t.Errorf("second update: %v %v", old, ok)
		}
		return append(old, 2)
	})
	if v, _ := tr.Get(p); len(v) != 2 {
		t.Errorf("got %v", v)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestCoveredByPrefix(t *testing.T) {
	tr := New[int]()
	tr.Insert(netip.MustParsePrefix("10.0.0.0/8"), 1)
	if !tr.CoveredByPrefix(netip.MustParsePrefix("10.1.0.0/16")) {
		t.Error("/16 inside stored /8 should be covered")
	}
	if tr.CoveredByPrefix(netip.MustParsePrefix("11.0.0.0/16")) {
		t.Error("/16 outside should not be covered")
	}
	if !tr.CoveredByPrefix(netip.MustParsePrefix("10.0.0.0/8")) {
		t.Error("exact match should be covered")
	}
	if tr.CoveredByPrefix(netip.MustParsePrefix("10.0.0.0/7")) {
		t.Error("shorter than stored should not be covered")
	}
}

func TestWalk(t *testing.T) {
	tr := New[int]()
	in := []string{"10.0.0.0/8", "10.1.0.0/16", "192.0.2.0/24", "0.0.0.0/0", "2001:db8::/32"}
	for i, s := range in {
		tr.Insert(netip.MustParsePrefix(s), i)
	}
	var got []string
	tr.Walk(func(p netip.Prefix, v int) bool {
		got = append(got, p.String())
		return true
	})
	if len(got) != len(in) {
		t.Fatalf("walk visited %d prefixes, want %d: %v", len(got), len(in), got)
	}
	want := append([]string(nil), in...)
	sort.Strings(want)
	sortedGot := append([]string(nil), got...)
	sort.Strings(sortedGot)
	for i := range want {
		if sortedGot[i] != want[i] {
			t.Errorf("walk mismatch: got %v want %v", sortedGot, want)
			break
		}
	}
	// Early stop.
	n := 0
	tr.Walk(func(netip.Prefix, int) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestWalkReconstructsHostRoutes(t *testing.T) {
	tr := New[int]()
	p := netip.MustParsePrefix("203.0.113.77/32")
	tr.Insert(p, 7)
	found := false
	tr.Walk(func(q netip.Prefix, v int) bool {
		if q == p && v == 7 {
			found = true
		}
		return true
	})
	if !found {
		t.Error("walk did not reconstruct /32")
	}
}

// Property test: trie longest-prefix match agrees with a linear scan.
func TestLookupAgainstLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := New[int]()
	var prefixes []netip.Prefix
	for i := 0; i < 400; i++ {
		bits := 8 + rng.Intn(25)
		addr := netip.AddrFrom4([4]byte{byte(rng.Intn(224) + 1), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))})
		p, err := addr.Prefix(bits)
		if err != nil {
			t.Fatal(err)
		}
		tr.Insert(p, i)
		prefixes = append(prefixes, p.Masked())
	}
	for i := 0; i < 2000; i++ {
		addr := netip.AddrFrom4([4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))})
		bestLen := -1
		for _, p := range prefixes {
			if p.Contains(addr) && p.Bits() > bestLen {
				bestLen = p.Bits()
			}
		}
		_, match, ok := tr.Lookup(addr)
		if bestLen == -1 {
			if ok {
				t.Fatalf("addr %v: trie matched %v, linear scan found none", addr, match)
			}
			continue
		}
		if !ok || match.Bits() != bestLen {
			t.Fatalf("addr %v: trie %v (ok=%v), linear best len %d", addr, match, ok, bestLen)
		}
	}
}

func BenchmarkTrieLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := New[int]()
	for i := 0; i < 100000; i++ {
		addr := netip.AddrFrom4([4]byte{byte(rng.Intn(224) + 1), byte(rng.Intn(256)), byte(rng.Intn(256)), 0})
		p, _ := addr.Prefix(8 + rng.Intn(17))
		tr.Insert(p, i)
	}
	addrs := make([]netip.Addr, 1024)
	for i := range addrs {
		addrs[i] = netip.AddrFrom4([4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(addrs[i%len(addrs)])
	}
}
