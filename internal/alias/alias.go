// Package alias represents IP alias-resolution results — groupings of
// interface addresses onto inferred routers — and implements three
// inference techniques against a probing substrate: a MIDAR-style
// monotonic-IPID test, an iffinder-style common-reply-source test, and a
// kapar/APAR-style analytical technique that trades precision for
// coverage (paper §7.4 compares the precise and imprecise variants).
// It also reads and writes the ITDK "nodes" file format that CAIDA
// distributes alias sets in.
package alias

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strings"
)

// Sets is a partition of interface addresses into alias groups
// ("nodes"). Addresses not present in any group are implicitly
// singletons. The zero value is not usable; construct with NewSets.
type Sets struct {
	group   map[netip.Addr]int
	members [][]netip.Addr
}

// NewSets returns an empty alias partition.
func NewSets() *Sets {
	return &Sets{group: make(map[netip.Addr]int)}
}

// Add merges the given addresses into one alias group. If any address is
// already grouped, the groups are unioned (alias resolution is
// transitive).
func (s *Sets) Add(addrs ...netip.Addr) {
	if len(addrs) == 0 {
		return
	}
	target := -1
	for _, a := range addrs {
		if g, ok := s.group[a]; ok {
			if target == -1 || g == target {
				target = g
				continue
			}
			// Union two existing groups: move the smaller into the larger.
			from, to := g, target
			if len(s.members[from]) > len(s.members[to]) {
				from, to = to, from
			}
			for _, m := range s.members[from] {
				s.group[m] = to
			}
			s.members[to] = append(s.members[to], s.members[from]...)
			s.members[from] = nil
			target = to
		}
	}
	if target == -1 {
		target = len(s.members)
		s.members = append(s.members, nil)
	}
	for _, a := range addrs {
		if _, ok := s.group[a]; !ok {
			s.group[a] = target
			s.members[target] = append(s.members[target], a)
		}
	}
}

// GroupOf returns an opaque group id for addr; ok is false for
// ungrouped (singleton) addresses.
func (s *Sets) GroupOf(addr netip.Addr) (int, bool) {
	g, ok := s.group[addr]
	return g, ok
}

// SameRouter reports whether a and b were resolved to the same router.
func (s *Sets) SameRouter(a, b netip.Addr) bool {
	ga, oka := s.group[a]
	gb, okb := s.group[b]
	return oka && okb && ga == gb
}

// Members returns the addresses aliased with addr (including addr), or
// just addr for singletons.
func (s *Sets) Members(addr netip.Addr) []netip.Addr {
	if g, ok := s.group[addr]; ok {
		return s.members[g]
	}
	return []netip.Addr{addr}
}

// NumGroups returns the number of non-empty groups.
func (s *Sets) NumGroups() int {
	n := 0
	for _, m := range s.members {
		if len(m) > 0 {
			n++
		}
	}
	return n
}

// NumAddrs returns the number of grouped addresses.
func (s *Sets) NumAddrs() int { return len(s.group) }

// Groups visits each non-empty group in a deterministic order. The
// slice passed to f must not be retained.
func (s *Sets) Groups(f func(addrs []netip.Addr) bool) {
	idx := make([]int, 0, len(s.members))
	for i, m := range s.members {
		if len(m) > 0 {
			idx = append(idx, i)
		}
	}
	// Sort groups by their smallest member for determinism.
	for _, i := range idx {
		sortAddrs(s.members[i])
	}
	sort.Slice(idx, func(a, b int) bool {
		return s.members[idx[a]][0].Less(s.members[idx[b]][0])
	})
	for _, i := range idx {
		if !f(s.members[i]) {
			return
		}
	}
}

func sortAddrs(a []netip.Addr) {
	sort.Slice(a, func(i, j int) bool { return a[i].Less(a[j]) })
}

// ReadNodes parses the ITDK nodes format:
//
//	node N1:  1.2.3.4 5.6.7.8
//
// Comment lines start with '#'.
func ReadNodes(r io.Reader) (*Sets, error) {
	s := NewSets()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rest, ok := strings.CutPrefix(line, "node ")
		if !ok {
			return nil, fmt.Errorf("alias: line %d: expected 'node' record", lineno)
		}
		_, addrPart, ok := strings.Cut(rest, ":")
		if !ok {
			return nil, fmt.Errorf("alias: line %d: missing ':' after node id", lineno)
		}
		fields := strings.Fields(addrPart)
		addrs := make([]netip.Addr, 0, len(fields))
		for _, f := range fields {
			a, err := netip.ParseAddr(f)
			if err != nil {
				return nil, fmt.Errorf("alias: line %d: %w", lineno, err)
			}
			addrs = append(addrs, a)
		}
		if len(addrs) > 0 {
			s.Add(addrs...)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("alias: read: %w", err)
	}
	return s, nil
}

// WriteNodes serializes in ITDK nodes format with sequential node ids.
func (s *Sets) WriteNodes(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# format: node <id>:  <addr> <addr> ...")
	id := 0
	var err error
	s.Groups(func(addrs []netip.Addr) bool {
		id++
		var sb strings.Builder
		fmt.Fprintf(&sb, "node N%d: ", id)
		for _, a := range addrs {
			sb.WriteByte(' ')
			sb.WriteString(a.String())
		}
		_, err = fmt.Fprintln(bw, sb.String())
		return err == nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}
