package alias

import (
	"net/netip"

	"repro/internal/netutil"
	"repro/internal/traceroute"
)

// Kapar implements a kapar/APAR-style analytical alias resolution
// (Keys 2010) over traceroute paths, without any probing. Its core
// inference: traceroute links are usually point-to-point /30 or /31
// subnets, so for an observed hop pair a→b, the "subnet mate" of a —
// the other usable address in a's /30 (or the partner in its /31) — is
// on the same router as b.
//
// As with the real tool, this aggressive heuristic increases coverage
// but over-merges when the point-to-point assumption fails (multi-access
// LANs, off-path addresses), producing the less precise alias groups
// whose effect on bdrmapIT the paper measures in §7.4 / Fig. 20.
// isIXP filters addresses on known multi-access exchange LANs, where
// the point-to-point assumption never holds (the real tool consumes an
// IXP prefix list for the same reason). A nil predicate disables the
// filter.
func Kapar(traces []*traceroute.Trace, isIXP func(netip.Addr) bool) *Sets {
	if isIXP == nil {
		isIXP = func(netip.Addr) bool { return false }
	}
	// Collect the set of observed addresses; mates are only applied when
	// the mate address itself was observed somewhere (as kapar does).
	observed := make(map[netip.Addr]bool)
	for _, t := range traces {
		for _, h := range t.Hops {
			observed[h.Addr] = true
		}
	}
	sets := NewSets()
	for _, t := range traces {
		for i := 0; i+1 < len(t.Hops); i++ {
			a, b := t.Hops[i], t.Hops[i+1]
			if a.Addr == b.Addr || isIXP(a.Addr) || isIXP(b.Addr) {
				continue
			}
			// APAR's core rule: b replied with its ingress interface on
			// the a→b link subnet, so the subnet mate of b's address is
			// an interface of a's router. The rule is applied to every
			// consecutive responsive pair — including pairs bridging
			// unresponsive hops, where the assumption fails and produces
			// the false merges that make kapar's groups imprecise.
			for _, mate := range subnetMates(b.Addr) {
				if mate != a.Addr && observed[mate] && !isIXP(mate) &&
					!mateConflict(sets, a.Addr, mate) {
					sets.Add(a.Addr, mate)
				}
			}
		}
	}
	return sets
}

// mateConflict applies APAR's accumulation constraint: a merge is
// rejected when it would place both ends of one point-to-point subnet
// on the same router (a router never talks to itself over a /30).
func mateConflict(sets *Sets, x, y netip.Addr) bool {
	gx := sets.Members(x)
	gy := sets.Members(y)
	// Check the smaller group's mates against the larger group.
	if len(gy) < len(gx) {
		gx, gy = gy, gx
	}
	in := make(map[netip.Addr]bool, len(gy))
	for _, m := range gy {
		in[m] = true
	}
	for _, m := range gx {
		for _, mate := range subnetMates(m) {
			if in[mate] {
				return true
			}
		}
	}
	return false
}

// subnetMates returns the candidate point-to-point partners of addr:
// the /31 partner and the /30 partner (when addr is a usable /30 host).
func subnetMates(addr netip.Addr) []netip.Addr {
	addr = addr.Unmap()
	if !addr.Is4() {
		return nil
	}
	v := netutil.AddrToUint32(addr)
	mates := make([]netip.Addr, 0, 2)
	mates = append(mates, netutil.Uint32ToAddr(v^1)) // /31 partner
	switch v & 3 {
	case 1:
		mates = append(mates, netutil.Uint32ToAddr(v+1)) // .1 ↔ .2 in /30
	case 2:
		mates = append(mates, netutil.Uint32ToAddr(v-1))
	}
	return mates
}
