package alias

import (
	"net/netip"
	"sort"
)

// IPIDProber abstracts the active-probing substrate MIDAR needs: reading
// an address's IP-ID counter at a (discrete) probe time. Routers that
// share a counter across interfaces — the signal MIDAR exploits — return
// interleavable values for aliased addresses. ok is false when the
// address does not answer or does not use a shared monotonic counter.
type IPIDProber interface {
	ProbeIPID(addr netip.Addr, t int) (id uint16, ok bool)
}

// MIDAROptions tunes the monotonic-bounds test.
type MIDAROptions struct {
	// Rounds is the number of interleaved elimination-stage rounds
	// (default 8).
	Rounds int
	// VelocityTolerance bounds the relative velocity difference for two
	// addresses to share an elimination bucket (default 0.35).
	VelocityTolerance float64
}

func (o *MIDAROptions) defaults() {
	if o.Rounds <= 0 {
		o.Rounds = 8
	}
	if o.VelocityTolerance <= 0 {
		o.VelocityTolerance = 0.35
	}
}

type midarCand struct {
	addr  netip.Addr
	vel   float64
	times []int
	ids   []uint16
}

// MIDAR runs a MIDAR-style (Keys et al. 2013) alias-resolution sweep
// over the candidate addresses: estimate each responder's IP-ID
// velocity, bucket candidates with compatible velocities, and within a
// bucket run the monotonic-bounds test — interleaved samples of truly
// aliased addresses form a single sequence that increases monotonically
// (mod 2^16). The result has MIDAR's precision profile: shared-counter
// interfaces group; everything else stays singleton.
func MIDAR(p IPIDProber, addrs []netip.Addr, opts MIDAROptions) *Sets {
	opts.defaults()
	const estGap = 8 // virtual time between the two estimation probes
	var cands []midarCand
	for i, a := range addrs {
		t0 := i % 4
		id0, ok0 := p.ProbeIPID(a, t0)
		id1, ok1 := p.ProbeIPID(a, t0+estGap)
		if !ok0 || !ok1 {
			continue
		}
		delta := float64(uint16(id1 - id0)) // wraparound-safe for short gaps
		cands = append(cands, midarCand{addr: a, vel: delta / estGap})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].vel != cands[j].vel {
			return cands[i].vel < cands[j].vel
		}
		return cands[i].addr.Less(cands[j].addr)
	})
	sets := NewSets()
	for lo := 0; lo < len(cands); {
		hi := lo + 1
		for hi < len(cands) && compatibleVelocity(cands[lo].vel, cands[hi].vel, opts.VelocityTolerance) {
			hi++
		}
		if hi-lo > 1 {
			midarEliminate(p, cands[lo:hi], opts, sets)
		}
		lo = hi
	}
	return sets
}

func compatibleVelocity(a, b, tol float64) bool {
	hi := a
	if b > hi {
		hi = b
	}
	if hi == 0 {
		return true
	}
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	return diff/hi <= tol
}

// midarEliminate runs interleaved time-sliced probing over one velocity
// bucket and merges pairs passing the monotonic-bounds test.
func midarEliminate(p IPIDProber, bucket []midarCand, opts MIDAROptions, sets *Sets) {
	n := len(bucket)
	for r := 0; r < opts.Rounds; r++ {
		for i := range bucket {
			t := (r*n + i) * 2 // strictly increasing probe times, interleaved
			id, ok := p.ProbeIPID(bucket[i].addr, t)
			if !ok {
				continue
			}
			bucket[i].times = append(bucket[i].times, t)
			bucket[i].ids = append(bucket[i].ids, id)
		}
	}
	pairIdx := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairIdx++
			if sets.SameRouter(bucket[i].addr, bucket[j].addr) {
				continue
			}
			if monotonicBoundsTest(&bucket[i], &bucket[j]) &&
				corroborate(p, &bucket[i], &bucket[j], pairIdx) {
				sets.Add(bucket[i].addr, bucket[j].addr)
			}
		}
	}
}

// corroborate is MIDAR's corroboration stage: a candidate pair is
// re-probed with tightly interleaved samples (alternating every time
// unit). A genuinely shared counter advances by ≈velocity between
// samples in both the a→b and b→a directions; two distinct counters
// with a base offset δ fail one direction unless δ is below the
// per-step velocity — which is what gives MIDAR its precision.
func corroborate(p IPIDProber, a, b *midarCand, pairIdx int) bool {
	base := 1_000_000 + pairIdx*64
	vel := a.vel
	if b.vel > vel {
		vel = b.vel
	}
	limit := vel*1.5 + 4
	var prev uint16
	have := false
	for k := 0; k < 8; k++ {
		t := base + k
		var id uint16
		var ok bool
		if k%2 == 0 {
			id, ok = p.ProbeIPID(a.addr, t)
		} else {
			id, ok = p.ProbeIPID(b.addr, t)
		}
		if !ok {
			return false
		}
		if have {
			adv := uint16(id - prev)
			if float64(adv) > limit {
				return false
			}
		}
		prev, have = id, true
	}
	return true
}

// monotonicBoundsTest merges the two candidates' (time, id) samples in
// time order and checks the merged IP-ID sequence increases
// monotonically modulo 2^16, with the total advance consistent with the
// candidates' shared velocity (MIDAR's MBT).
func monotonicBoundsTest(a, b *midarCand) bool {
	if len(a.ids) < 3 || len(b.ids) < 3 {
		return false
	}
	type sample struct {
		t  int
		id uint16
	}
	merged := make([]sample, 0, len(a.ids)+len(b.ids))
	for k := range a.ids {
		merged = append(merged, sample{a.times[k], a.ids[k]})
	}
	for k := range b.ids {
		merged = append(merged, sample{b.times[k], b.ids[k]})
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].t < merged[j].t })
	// Maximum plausible advance between consecutive samples: velocity
	// estimate with generous headroom; a shared counter can also be
	// bumped by background traffic.
	vel := a.vel
	if b.vel > vel {
		vel = b.vel
	}
	var total uint32
	for i := 1; i < len(merged); i++ {
		dt := merged[i].t - merged[i-1].t
		adv := uint16(merged[i].id - merged[i-1].id) // mod 2^16
		limit := (vel+2)*float64(dt)*4 + 16
		if float64(adv) > limit {
			return false
		}
		total += uint32(adv)
	}
	// Reject sequences that wrapped more than once overall (would mask
	// non-monotonicity).
	return total < 1<<15
}
