package alias

import (
	"net/netip"
	"testing"

	"repro/internal/traceroute"
)

// fakeNet is a probing substrate with explicit router definitions.
type fakeNet struct {
	// router id per address
	owner map[netip.Addr]int
	// per-router IP-ID counters
	base map[int]uint16
	vel  map[int]float64
	// routers without shared counters
	noShared map[int]bool
	// canonical UDP reply source per router (zero = reply from probed addr)
	canonical map[int]netip.Addr
}

func newFakeNet() *fakeNet {
	return &fakeNet{
		owner:     make(map[netip.Addr]int),
		base:      make(map[int]uint16),
		vel:       make(map[int]float64),
		noShared:  make(map[int]bool),
		canonical: make(map[int]netip.Addr),
	}
}

func (f *fakeNet) addRouter(id int, base uint16, vel float64, addrs ...string) {
	f.base[id] = base
	f.vel[id] = vel
	for _, s := range addrs {
		f.owner[netip.MustParseAddr(s)] = id
	}
}

func (f *fakeNet) ProbeIPID(addr netip.Addr, t int) (uint16, bool) {
	id, ok := f.owner[addr]
	if !ok || f.noShared[id] {
		return 0, false
	}
	return f.base[id] + uint16(int(f.vel[id]*float64(t))), true
}

func (f *fakeNet) ProbeUDP(addr netip.Addr) (netip.Addr, bool) {
	id, ok := f.owner[addr]
	if !ok {
		return netip.Addr{}, false
	}
	if c := f.canonical[id]; c.IsValid() {
		return c, true
	}
	return addr, true
}

func (f *fakeNet) addrs() []netip.Addr {
	var out []netip.Addr
	for a := range f.owner {
		out = append(out, a)
	}
	sortAddrs(out)
	return out
}

func TestMIDARGroupsSharedCounters(t *testing.T) {
	f := newFakeNet()
	f.addRouter(1, 100, 2.0, "10.0.0.1", "10.0.0.5", "10.0.0.9")
	f.addRouter(2, 40000, 2.0, "10.0.1.1", "10.0.1.5") // same velocity, far base
	f.addRouter(3, 7000, 5.5, "10.0.2.1", "10.0.2.5")
	sets := MIDAR(f, f.addrs(), MIDAROptions{})
	mustSame := [][2]string{
		{"10.0.0.1", "10.0.0.5"}, {"10.0.0.5", "10.0.0.9"},
		{"10.0.1.1", "10.0.1.5"}, {"10.0.2.1", "10.0.2.5"},
	}
	for _, p := range mustSame {
		if !sets.SameRouter(netip.MustParseAddr(p[0]), netip.MustParseAddr(p[1])) {
			t.Errorf("true aliases %v not grouped", p)
		}
	}
	mustDiffer := [][2]string{
		{"10.0.0.1", "10.0.1.1"}, {"10.0.0.1", "10.0.2.1"}, {"10.0.1.1", "10.0.2.1"},
	}
	for _, p := range mustDiffer {
		if sets.SameRouter(netip.MustParseAddr(p[0]), netip.MustParseAddr(p[1])) {
			t.Errorf("distinct routers %v falsely merged", p)
		}
	}
}

func TestMIDARSkipsNonMonotonic(t *testing.T) {
	f := newFakeNet()
	f.addRouter(1, 0, 1.0, "10.0.0.1", "10.0.0.2")
	f.noShared[1] = true
	sets := MIDAR(f, f.addrs(), MIDAROptions{})
	if sets.NumAddrs() != 0 {
		t.Errorf("non-shared-counter router grouped: %d addrs", sets.NumAddrs())
	}
}

func TestMIDARSameVelocityCloseBases(t *testing.T) {
	// Two routers with identical velocity and nearby (but not equal)
	// bases: the corroboration stage must keep them apart when the
	// offset exceeds the per-step advance.
	f := newFakeNet()
	f.addRouter(1, 1000, 1.0, "10.0.0.1", "10.0.0.2")
	f.addRouter(2, 1300, 1.0, "10.0.1.1", "10.0.1.2")
	sets := MIDAR(f, f.addrs(), MIDAROptions{})
	if sets.SameRouter(netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.1.1")) {
		t.Error("offset counters falsely merged")
	}
	if !sets.SameRouter(netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2")) {
		t.Error("true aliases missed")
	}
}

func TestIffinder(t *testing.T) {
	f := newFakeNet()
	f.addRouter(1, 0, 1, "10.0.0.1", "10.0.0.2", "10.0.0.250")
	f.canonical[1] = netip.MustParseAddr("10.0.0.250")
	f.addRouter(2, 0, 1, "10.0.1.1", "10.0.1.2") // replies from probed addr
	sets := Iffinder(f, f.addrs())
	if !sets.SameRouter(netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2")) {
		t.Error("canonical-source aliases not grouped")
	}
	if _, ok := sets.GroupOf(netip.MustParseAddr("10.0.1.1")); ok {
		t.Error("self-replying addrs should stay singleton")
	}
}

func tr(vp string, hops ...traceroute.Hop) *traceroute.Trace {
	return &traceroute.Trace{VP: vp, Dst: netip.MustParseAddr("203.0.113.1"), Hops: hops}
}

func hop(addr string, ttl uint8) traceroute.Hop {
	return traceroute.Hop{Addr: netip.MustParseAddr(addr), ProbeTTL: ttl, Reply: traceroute.TimeExceeded}
}

func TestKaparMateInference(t *testing.T) {
	// Link 10.0.0.0/30: router A has .1, router B has .2. A trace
	// crossing A→B shows (aIngress, .2); kapar should put the mate of
	// .2 (= .1) on the router of aIngress.
	traces := []*traceroute.Trace{
		tr("vp", hop("192.0.2.9", 1), hop("10.0.0.2", 2)),
		// .1 observed elsewhere so the mate is known.
		tr("vp", hop("198.51.100.7", 1), hop("10.0.0.1", 2)),
	}
	sets := Kapar(traces, nil)
	if !sets.SameRouter(a("192.0.2.9"), a("10.0.0.1")) {
		t.Error("mate of subsequent hop not placed on previous router")
	}
	if sets.SameRouter(a("10.0.0.1"), a("10.0.0.2")) {
		t.Error("the two ends of a /30 must never alias")
	}
}

func TestKaparConflictConstraint(t *testing.T) {
	// A gap pair that would place both ends of 10.0.0.0/30 on one
	// router must be rejected.
	traces := []*traceroute.Trace{
		tr("vp", hop("192.0.2.9", 1), hop("10.0.0.2", 2)), // .1 onto 192.0.2.9's router
		tr("vp", hop("10.0.0.2", 1), hop("10.0.0.6", 3)),  // mate(.6)=.5 unobserved
		tr("vp", hop("10.0.0.6", 1), hop("10.0.0.1", 3)),  // would merge .2 with .2's mate group
	}
	sets := Kapar(traces, nil)
	if sets.SameRouter(a("10.0.0.1"), a("10.0.0.2")) {
		t.Error("conflict constraint failed: /30 endpoints aliased")
	}
}

func TestKaparIXPFilter(t *testing.T) {
	isIXP := func(ad netip.Addr) bool {
		return netip.MustParsePrefix("11.0.0.0/24").Contains(ad)
	}
	traces := []*traceroute.Trace{
		tr("vp", hop("11.0.0.5", 1), hop("11.0.0.6", 2)),
		tr("vp", hop("192.0.2.1", 1), hop("11.0.0.6", 2)),
	}
	sets := Kapar(traces, isIXP)
	if sets.NumAddrs() != 0 {
		t.Errorf("IXP addresses produced merges: %d", sets.NumAddrs())
	}
}

func TestSubnetMates(t *testing.T) {
	mates := subnetMates(a("10.0.0.1"))
	want := map[netip.Addr]bool{a("10.0.0.0"): true, a("10.0.0.2"): true}
	for _, m := range mates {
		if !want[m] {
			t.Errorf("unexpected mate %v", m)
		}
		delete(want, m)
	}
	if len(want) != 0 {
		t.Errorf("missing mates: %v", want)
	}
	if got := subnetMates(a("2001:db8::1")); got != nil {
		t.Errorf("IPv6 mates = %v", got)
	}
}
