package alias

import "net/netip"

// UDPProber abstracts the probing iffinder needs: sending a UDP probe to
// a high (closed) port and observing the source address of the ICMP
// Port Unreachable reply. Many routers source that reply from a fixed
// interface (often a loopback), revealing aliases. ok is false when the
// address does not reply.
type UDPProber interface {
	ProbeUDP(addr netip.Addr) (replySrc netip.Addr, ok bool)
}

// Iffinder runs an iffinder-style (Keys) sweep: each candidate address
// is probed, and an address that replies from a different source address
// is aliased with that source. Addresses replying from themselves yield
// no alias information.
func Iffinder(p UDPProber, addrs []netip.Addr) *Sets {
	sets := NewSets()
	for _, a := range addrs {
		src, ok := p.ProbeUDP(a)
		if !ok || !src.IsValid() || src == a {
			continue
		}
		sets.Add(a, src)
	}
	return sets
}

// Merge unions two alias partitions into a new one (e.g. MIDAR plus
// iffinder, the combination the ITDK midar+iffinder dataset ships).
func Merge(parts ...*Sets) *Sets {
	out := NewSets()
	for _, p := range parts {
		if p == nil {
			continue
		}
		p.Groups(func(addrs []netip.Addr) bool {
			out.Add(addrs...)
			return true
		})
	}
	return out
}
