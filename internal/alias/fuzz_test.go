package alias

import (
	"net/netip"
	"strings"
	"testing"
)

// FuzzReadNodes asserts the ITDK nodes parser never panics and that
// accepted partitions are internally consistent.
func FuzzReadNodes(f *testing.F) {
	f.Add("node N1:  1.2.3.4 5.6.7.8\n")
	f.Add("# comment\n\nnode N2:  9.9.9.9\n")
	f.Add("node N1:\n")
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ReadNodes(strings.NewReader(in))
		if err != nil {
			return
		}
		s.Groups(func(addrs []netip.Addr) bool {
			for _, a := range addrs {
				if !s.SameRouter(a, addrs[0]) {
					t.Fatal("partition inconsistent")
				}
			}
			return true
		})
	})
}
