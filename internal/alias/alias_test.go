package alias

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
)

func a(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestSetsAddAndQuery(t *testing.T) {
	s := NewSets()
	s.Add(a("1.1.1.1"), a("1.1.1.2"))
	s.Add(a("2.2.2.1"), a("2.2.2.2"))
	if !s.SameRouter(a("1.1.1.1"), a("1.1.1.2")) {
		t.Error("grouped addrs not same router")
	}
	if s.SameRouter(a("1.1.1.1"), a("2.2.2.1")) {
		t.Error("distinct groups merged")
	}
	if s.SameRouter(a("1.1.1.1"), a("9.9.9.9")) {
		t.Error("ungrouped addr matched")
	}
	if s.NumGroups() != 2 || s.NumAddrs() != 4 {
		t.Errorf("counts: %d groups %d addrs", s.NumGroups(), s.NumAddrs())
	}
}

func TestSetsTransitiveUnion(t *testing.T) {
	s := NewSets()
	s.Add(a("1.1.1.1"), a("1.1.1.2"))
	s.Add(a("2.2.2.1"), a("2.2.2.2"))
	// Bridge the two groups.
	s.Add(a("1.1.1.2"), a("2.2.2.1"))
	if !s.SameRouter(a("1.1.1.1"), a("2.2.2.2")) {
		t.Error("transitive union failed")
	}
	if s.NumGroups() != 1 {
		t.Errorf("groups = %d, want 1", s.NumGroups())
	}
	if got := s.Members(a("1.1.1.1")); len(got) != 4 {
		t.Errorf("members = %v", got)
	}
}

func TestMembersSingleton(t *testing.T) {
	s := NewSets()
	got := s.Members(a("9.9.9.9"))
	if len(got) != 1 || got[0] != a("9.9.9.9") {
		t.Errorf("singleton members = %v", got)
	}
}

func TestGroupsDeterministic(t *testing.T) {
	build := func() []string {
		s := NewSets()
		s.Add(a("5.5.5.5"), a("5.5.5.6"))
		s.Add(a("1.1.1.1"), a("1.1.1.2"))
		var out []string
		s.Groups(func(addrs []netip.Addr) bool {
			out = append(out, addrs[0].String())
			return true
		})
		return out
	}
	one, two := build(), build()
	if len(one) != 2 || one[0] != "1.1.1.1" {
		t.Errorf("group order: %v", one)
	}
	for i := range one {
		if one[i] != two[i] {
			t.Errorf("nondeterministic: %v vs %v", one, two)
		}
	}
}

func TestNodesRoundTrip(t *testing.T) {
	s := NewSets()
	s.Add(a("1.1.1.1"), a("1.1.1.2"), a("10.0.0.1"))
	s.Add(a("2.2.2.1"), a("2.2.2.2"))
	var buf bytes.Buffer
	if err := s.WriteNodes(&buf); err != nil {
		t.Fatal(err)
	}
	again, err := ReadNodes(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if again.NumGroups() != 2 || again.NumAddrs() != 5 {
		t.Fatalf("round trip: %d groups %d addrs", again.NumGroups(), again.NumAddrs())
	}
	if !again.SameRouter(a("1.1.1.1"), a("10.0.0.1")) {
		t.Error("group membership lost")
	}
}

func TestReadNodesFormat(t *testing.T) {
	in := "# comment\nnode N1:  1.2.3.4 5.6.7.8\n\nnode N2:  9.9.9.9\n"
	s, err := ReadNodes(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !s.SameRouter(a("1.2.3.4"), a("5.6.7.8")) {
		t.Error("N1 not grouped")
	}
	if _, ok := s.GroupOf(a("9.9.9.9")); !ok {
		t.Error("singleton node dropped")
	}
	for _, bad := range []string{"bogus line", "node N1 1.2.3.4", "node N1:  notanip"} {
		if _, err := ReadNodes(strings.NewReader(bad)); err == nil {
			t.Errorf("expected error for %q", bad)
		}
	}
}

func TestMerge(t *testing.T) {
	x := NewSets()
	x.Add(a("1.1.1.1"), a("1.1.1.2"))
	y := NewSets()
	y.Add(a("1.1.1.2"), a("1.1.1.3"))
	m := Merge(x, y, nil)
	if !m.SameRouter(a("1.1.1.1"), a("1.1.1.3")) {
		t.Error("merge did not union overlapping groups")
	}
	// Merge must not mutate the parts.
	if x.SameRouter(a("1.1.1.1"), a("1.1.1.3")) {
		t.Error("merge mutated input")
	}
}
