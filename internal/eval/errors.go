package eval

import (
	"sort"

	"repro/internal/asn"
	"repro/internal/core"
)

// ErrorClass labels why a router annotation went wrong, by the
// structural situation of the misannotated IR. The classes mirror the
// failure loci the paper discusses.
type ErrorClass string

// Error classes, from most to least specific.
const (
	// ErrLastHopEmptyDest: a last-hop IR whose interfaces were only seen
	// in Echo Replies (§5.1 — the paper notes no technique improves
	// these without more probing).
	ErrLastHopEmptyDest ErrorClass = "lasthop-empty-dest"
	// ErrLastHopWithDest: a last-hop IR despite destination evidence
	// (Algorithm 1 chose wrong).
	ErrLastHopWithDest ErrorClass = "lasthop-with-dest"
	// ErrThirdParty: the IR contains a router that sources replies from
	// a fixed off-path interface.
	ErrThirdParty ErrorClass = "third-party-router"
	// ErrHiddenAS: the true operator is a hidden transit AS (Fig. 12).
	ErrHiddenAS ErrorClass = "hidden-as"
	// ErrRealloc: the true operator uses reallocated address space.
	ErrRealloc ErrorClass = "reallocated-prefix"
	// ErrInvisibleOwner: the true operator's AS never appears among the
	// IR's interface origins (provider-addressed everything).
	ErrInvisibleOwner ErrorClass = "owner-not-in-origins"
	// ErrFalseMerge: the IR's interfaces truly belong to routers of
	// different operators (alias-resolution error).
	ErrFalseMerge ErrorClass = "false-alias-merge"
	// ErrOther: none of the above.
	ErrOther ErrorClass = "other"
)

// ErrorCensus counts misannotated IRs per class — the first diagnostic
// to reach for when accuracy drops on a new dataset.
type ErrorCensus struct {
	Total     int // IRs with a ground-truth operator
	Wrong     int
	PerClass  map[ErrorClass]int
	ClassList []ErrorClass // deterministic ordering of PerClass keys
}

// RunErrorCensus classifies every misannotated router of the standard
// inference run.
func RunErrorCensus(ds *Dataset) ErrorCensus {
	res := ds.RunBdrmapIT(nil, core.Options{})
	out := ErrorCensus{PerClass: make(map[ErrorClass]int)}
	for _, r := range res.Graph.Routers {
		owners := asn.NewSet()
		thirdParty := false
		hidden, realloc := false, false
		for _, i := range r.Interfaces {
			o := ds.In.OwnerASN(i.Addr)
			if o == asn.None {
				continue
			}
			owners.Add(o)
			tr := ds.In.RouterOf(i.Addr)
			if tr != nil && tr.ThirdPartyIface != nil {
				thirdParty = true
			}
			if a := ds.In.ASes[o]; a != nil {
				if a.Hidden {
					hidden = true
				}
				if a.ReallocFrom != nil {
					realloc = true
				}
			}
		}
		if owners.Len() == 0 {
			continue
		}
		out.Total++
		if owners.Len() == 1 && r.Annotation == owners.Sorted()[0] {
			continue
		}
		out.Wrong++
		var class ErrorClass
		switch {
		case owners.Len() > 1:
			class = ErrFalseMerge
		case r.LastHop && r.DestASes.Len() == 0:
			class = ErrLastHopEmptyDest
		case r.LastHop:
			class = ErrLastHopWithDest
		case thirdParty:
			class = ErrThirdParty
		case hidden:
			class = ErrHiddenAS
		case realloc:
			class = ErrRealloc
		case !r.OriginSet.Has(owners.Sorted()[0]):
			class = ErrInvisibleOwner
		default:
			class = ErrOther
		}
		out.PerClass[class]++
	}
	for c := range out.PerClass {
		out.ClassList = append(out.ClassList, c)
	}
	sort.Slice(out.ClassList, func(i, j int) bool {
		if out.PerClass[out.ClassList[i]] != out.PerClass[out.ClassList[j]] {
			return out.PerClass[out.ClassList[i]] > out.PerClass[out.ClassList[j]]
		}
		return out.ClassList[i] < out.ClassList[j]
	})
	return out
}
