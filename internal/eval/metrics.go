package eval

import (
	"net/netip"
	"sort"

	"repro/internal/asn"
	"repro/internal/netutil"
	"repro/internal/topo"
	"repro/internal/traceroute"
)

// Operators is the inference interface the scorer consumes: bdrmapIT,
// bdrmap, and MAP-IT results all provide it.
type Operators interface {
	// OperatorOf returns the inferred operator of the router using
	// addr (asn.None when uninferred).
	OperatorOf(addr netip.Addr) asn.ASN
}

// LinkObs is one observed router-level adjacency with its ground truth:
// a pair of true routers seen consecutively in at least one trace.
type LinkObs struct {
	// NearAddr/FarAddr are representative observed reply addresses.
	NearAddr, FarAddr netip.Addr
	// NearASN/FarASN are the ground-truth operators.
	NearASN, FarASN asn.ASN
	// FarEchoOnly: the far address only ever replied with Echo Reply
	// (excluded from recall, §7.2).
	FarEchoOnly bool
	// LastHopOnly: this adjacency was only observed with the far hop
	// terminating its trace (the Fig. 17 filter).
	LastHopOnly bool
}

// Interdomain reports whether the ground-truth operators differ.
func (l *LinkObs) Interdomain() bool { return l.NearASN != l.FarASN }

// Involves reports whether the ground truth involves network x.
func (l *LinkObs) Involves(x asn.ASN) bool { return l.NearASN == x || l.FarASN == x }

// ObservedLinks extracts the unique ground-truth router adjacencies
// observed in the traces. Consecutive responsive hops form an
// adjacency even across unresponsive gaps, matching the graph the
// inferences run on.
func ObservedLinks(in *topo.Internet, traces []*traceroute.Trace) []*LinkObs {
	echoOnly := make(map[netip.Addr]bool)
	for _, t := range traces {
		for _, h := range t.Hops {
			if netutil.IsSpecial(h.Addr) {
				continue
			}
			if _, ok := echoOnly[h.Addr]; !ok {
				echoOnly[h.Addr] = true
			}
			if h.Reply != traceroute.EchoReply {
				echoOnly[h.Addr] = false
			}
		}
	}
	type key [2]int
	links := make(map[key]*LinkObs)
	for _, t := range traces {
		var hops []traceroute.Hop
		for _, h := range t.Hops {
			if !netutil.IsSpecial(h.Addr) {
				hops = append(hops, h)
			}
		}
		for i := 0; i+1 < len(hops); i++ {
			a, b := hops[i], hops[i+1]
			ra, rb := in.RouterOf(a.Addr), in.RouterOf(b.Addr)
			if ra == nil || rb == nil || ra == rb {
				continue
			}
			k := key{ra.ID, rb.ID}
			l, ok := links[k]
			if !ok {
				l = &LinkObs{
					NearAddr: a.Addr, FarAddr: b.Addr,
					NearASN: ra.Owner.EffectiveASN(), FarASN: rb.Owner.EffectiveASN(),
					FarEchoOnly: echoOnly[b.Addr],
					LastHopOnly: true,
				}
				links[k] = l
			}
			if i+1 < len(hops)-1 {
				l.LastHopOnly = false
			}
		}
	}
	out := make([]*LinkObs, 0, len(links))
	for _, l := range links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].NearAddr != out[j].NearAddr {
			return out[i].NearAddr.Less(out[j].NearAddr)
		}
		return out[i].FarAddr.Less(out[j].FarAddr)
	})
	return out
}

// PR is a precision/recall tally.
type PR struct{ TP, FP, FN int }

// Precision returns TP/(TP+FP), or 0 when undefined.
func (p PR) Precision() float64 {
	if p.TP+p.FP == 0 {
		return 0
	}
	return float64(p.TP) / float64(p.TP+p.FP)
}

// Recall returns TP/(TP+FN), or 0 when undefined.
func (p PR) Recall() float64 {
	if p.TP+p.FN == 0 {
		return 0
	}
	return float64(p.TP) / float64(p.TP+p.FN)
}

// ScoreOptions filters the evaluation.
type ScoreOptions struct {
	// ExcludeLastHopOnly drops adjacencies only seen terminating traces
	// (Fig. 17).
	ExcludeLastHopOnly bool
}

// Score computes precision and recall of an inference for ground-truth
// network gt over the observed links, following §7.2: precision counts
// inferred interdomain links involving gt that are correct (not
// internal, and with the right connected networks); recall counts
// ground-truth interdomain links involving gt that were correctly
// identified, excluding echo-only far interfaces.
func Score(links []*LinkObs, op Operators, gt asn.ASN, opts ScoreOptions) PR {
	var pr PR
	for _, l := range links {
		if opts.ExcludeLastHopOnly && l.LastHopOnly {
			continue
		}
		infNear := op.OperatorOf(l.NearAddr)
		infFar := op.OperatorOf(l.FarAddr)
		infInter := infNear != asn.None && infFar != asn.None && infNear != infFar
		infInvolves := infInter && (infNear == gt || infFar == gt)
		correct := infInter && infNear == l.NearASN && infFar == l.FarASN

		if infInvolves {
			if correct && l.Interdomain() {
				pr.TP++
			} else {
				pr.FP++
			}
		}
		if l.Interdomain() && l.Involves(gt) && !l.FarEchoOnly {
			if !(correct && infInvolves) {
				pr.FN++
			}
		}
	}
	return pr
}

// Accuracy returns the fraction of ground-truth interdomain links
// involving gt whose connected networks were inferred correctly — the
// Fig. 15 metric — along with the number of links evaluated.
func Accuracy(links []*LinkObs, op Operators, gt asn.ASN) (acc float64, total int) {
	correct := 0
	for _, l := range links {
		if !l.Interdomain() || !l.Involves(gt) || l.FarEchoOnly {
			continue
		}
		total++
		infNear := op.OperatorOf(l.NearAddr)
		infFar := op.OperatorOf(l.FarAddr)
		if infNear == l.NearASN && infFar == l.FarASN {
			correct++
		}
	}
	if total == 0 {
		return 0, 0
	}
	return float64(correct) / float64(total), total
}

// VisibleLinks counts the ground-truth interdomain links involving gt
// that appear in the observed set (the Fig. 19 numerator).
func VisibleLinks(links []*LinkObs, gt asn.ASN) int {
	n := 0
	for _, l := range links {
		if l.Interdomain() && l.Involves(gt) {
			n++
		}
	}
	return n
}
