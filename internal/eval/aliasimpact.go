package eval

import (
	"net/netip"

	"repro/internal/alias"
	"repro/internal/asn"
	"repro/internal/core"
	"repro/internal/topo"
	"repro/internal/traceroute"
)

// AliasImpact classifies how alias resolution changed router-annotation
// outcomes relative to the pure interface graph — the investigation the
// paper leaves as future work (§7.4: aggregation "can impact the
// results both positively and negatively").
//
// For every multi-interface IR in the aliased run, the member
// interfaces' annotations are compared between the two runs:
//
//   - Fixed: at least one member was wrong in the interface-graph run
//     and every member is correct with aliases (grouping supplied the
//     missing constraints).
//   - Broken: every member was correct without aliases and at least one
//     is wrong with them (a noisy member dragged the group down —
//     reallocated or third-party addresses, per the paper).
//   - Neutral: anything else (both right, both wrong, or mixed).
type AliasImpact struct {
	MultiIRs int // multi-interface IRs examined
	Fixed    int
	Broken   int
	Neutral  int
	// BrokenAtRealloc counts Broken IRs containing an address inside a
	// reallocated block — the failure locus the paper identifies ("the
	// negative impacts ... occurred exclusively at the edge of the
	// Tier-1 network, where reallocated prefixes are common").
	BrokenAtRealloc int
}

// RunAliasImpact runs the inference with and without alias resolution
// and classifies every multi-interface IR.
func RunAliasImpact(ds *Dataset) AliasImpact {
	withRes := ds.RunBdrmapIT(ds.Aliases, core.Options{})
	withoutRes := ds.RunBdrmapIT(EmptyAliases(), core.Options{})

	var out AliasImpact
	for _, r := range withRes.Graph.Routers {
		if len(r.Interfaces) < 2 {
			continue
		}
		out.MultiIRs++
		allRightWith, allRightWithout := true, true
		anyWrongWithout := false
		hasRealloc := false
		for _, i := range r.Interfaces {
			truth := ds.In.OwnerASN(i.Addr)
			if truth == asn.None {
				continue
			}
			if withRes.OperatorOf(i.Addr) != truth {
				allRightWith = false
			}
			if withoutRes.OperatorOf(i.Addr) != truth {
				allRightWithout = false
				anyWrongWithout = true
			}
			if a := ds.In.OwnerOf(i.Addr); a != nil && a.ReallocFrom != nil {
				hasRealloc = true
			}
		}
		switch {
		case allRightWith && anyWrongWithout:
			out.Fixed++
		case allRightWithout && !allRightWith:
			out.Broken++
			if hasRealloc {
				out.BrokenAtRealloc++
			}
		default:
			out.Neutral++
		}
	}
	return out
}

// IPv6Parity is the dual-stack experiment's outcome: link accuracy of
// the same inference run over the IPv4 campaign and its IPv6 twin.
// Under the simulator's structure-preserving embedding the two runs
// face isomorphic inputs, so any divergence indicates family-dependent
// behaviour in the pipeline.
type IPv6Parity struct {
	V4Accuracy, V6Accuracy float64
	V4Links, V6Links       int
}

// RunIPv6Parity runs bdrmapIT over the IPv6 view of the campaign and
// compares link accuracy with the IPv4 run.
func RunIPv6Parity(ds *Dataset) IPv6Parity {
	var out IPv6Parity
	v4res := ds.RunBdrmapIT(nil, core.Options{})
	out.V4Accuracy, out.V4Links = ds.OverallAccuracy(v4res)

	v6traces := make([]*traceroute.Trace, len(ds.Traces))
	for i, t := range ds.Traces {
		v6traces[i] = topo.TranslateTraceV6(t)
	}
	v6aliases := alias.NewSets()
	ds.Aliases.Groups(func(addrs []netip.Addr) bool {
		v6 := make([]netip.Addr, len(addrs))
		for i, a := range addrs {
			v6[i] = topo.V6Of(a)
		}
		v6aliases.Add(v6...)
		return true
	})
	v6res := core.Infer(v6traces, ds.Resolver, v6aliases, ds.Rels, core.Options{Workers: ds.Workers})

	links := ObservedLinks(ds.In, v6traces)
	correct, total := 0, 0
	for _, gt := range ds.gtNetworks() {
		for _, l := range links {
			if !l.Interdomain() || !l.Involves(gt.ASN) || l.FarEchoOnly {
				continue
			}
			total++
			if v6res.OperatorOf(l.NearAddr) == l.NearASN && v6res.OperatorOf(l.FarAddr) == l.FarASN {
				correct++
			}
		}
	}
	if total > 0 {
		out.V6Accuracy = float64(correct) / float64(total)
	}
	out.V6Links = total
	return out
}

// RelAccuracy scores the relationship-inference pass against the
// simulator's ground-truth business relationships (the quality of the
// §4.1 input when no CAIDA file is available). Edges invisible in BGP
// (backup links of invisible reallocations) are excluded from recall —
// no path-based inference can see them.
type RelAccuracy struct {
	// P2C/P2P tallies over ground-truth edges visible in BGP.
	P2CCorrect, P2CWrongType, P2CMissing int
	P2PCorrect, P2PWrongType, P2PMissing int
	// Spurious counts inferred edges with no ground-truth counterpart.
	Spurious int
}

// RunRelAccuracy compares the dataset's inferred relationship graph to
// ground truth.
func RunRelAccuracy(ds *Dataset) RelAccuracy {
	var out RelAccuracy
	truth := ds.In.Rels
	inferred := ds.Rels
	seen := make(map[[2]asn.ASN]bool)
	for _, e := range ds.In.Edges() {
		if e.BGPInvisible {
			continue
		}
		a, b := e.A.ASN, e.B.ASN
		seen[[2]asn.ASN{a, b}] = true
		switch {
		case e.Rel == 0: // peers
			switch {
			case inferred.IsPeer(a, b):
				out.P2PCorrect++
			case inferred.HasRelationship(a, b):
				out.P2PWrongType++
			default:
				out.P2PMissing++
			}
		default:
			p, c := e.A.ASN, e.B.ASN
			if e.Rel == 1 {
				p, c = c, p
			}
			switch {
			case inferred.IsProvider(p, c):
				out.P2CCorrect++
			case inferred.HasRelationship(p, c):
				out.P2CWrongType++
			default:
				out.P2CMissing++
			}
		}
	}
	for _, a := range inferred.ASes() {
		for b := range inferred.Customers(a) {
			if !truth.HasRelationship(a, b) {
				out.Spurious++
			}
		}
		for b := range inferred.Peers(a) {
			if a < b && !truth.HasRelationship(a, b) {
				out.Spurious++
			}
		}
	}
	return out
}
