package eval

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/alias"
	"repro/internal/asn"
	"repro/internal/baseline/bdrmap"
	"repro/internal/baseline/mapit"
	"repro/internal/core"
	"repro/internal/topo"
)

// gtOrder fixes the presentation order of the ground-truth networks.
var gtOrder = []string{"Tier1", "RE1", "RE2", "LAccess"}

func (ds *Dataset) gtNetworks() []struct {
	Name string
	ASN  asn.ASN
} {
	var out []struct {
		Name string
		ASN  asn.ASN
	}
	for _, name := range gtOrder {
		if a, ok := ds.GT[name]; ok {
			out = append(out, struct {
				Name string
				ASN  asn.ASN
			}{name, a})
		}
	}
	return out
}

// RunBdrmapIT executes the full bdrmapIT pipeline over the dataset with
// the given aliases (nil → the dataset's midar+iffinder run) and
// options.
func (ds *Dataset) RunBdrmapIT(aliases *alias.Sets, opts core.Options) *core.Result {
	if aliases == nil {
		aliases = ds.Aliases
	}
	if opts.Workers == 0 {
		opts.Workers = ds.Workers
	}
	return core.Infer(ds.Traces, ds.Resolver, aliases, ds.Rels, opts)
}

// Fig15Row is one ground-truth network's single-VP regression result
// (paper Fig. 15): bdrmapIT vs bdrmap accuracy on identical data.
type Fig15Row struct {
	Network  string
	ASN      asn.ASN
	Links    int
	BdrmapIT float64
	Bdrmap   float64
}

// RunFig15 reruns the §7.1 regression: for each ground-truth network,
// a single in-network VP campaign scored for both tools.
func RunFig15(ds *Dataset) []Fig15Row {
	var rows []Fig15Row
	for _, gt := range ds.gtNetworks() {
		vp, ok := ds.In.VPIn(gt.ASN)
		if !ok {
			continue
		}
		traces := ds.In.RunCampaign([]topo.VP{vp}, ds.Targets)
		addrs := ObservedAddrs(traces)
		p := ds.In.Prober()
		aliases := alias.Merge(alias.MIDAR(p, addrs, alias.MIDAROptions{}), alias.Iffinder(p, addrs))

		itRes := core.Infer(traces, ds.Resolver, aliases, ds.Rels, core.Options{Workers: ds.Workers})
		bRes := bdrmap.Infer(traces, ds.Resolver, aliases, ds.Rels, bdrmap.Options{VPAS: gt.ASN})

		links := ObservedLinks(ds.In, traces)
		accIT, n := Accuracy(links, itRes, gt.ASN)
		accB, _ := Accuracy(links, bRes, gt.ASN)
		rows = append(rows, Fig15Row{Network: gt.Name, ASN: gt.ASN, Links: n, BdrmapIT: accIT, Bdrmap: accB})
	}
	return rows
}

// Fig16Row is one network's Internet-wide precision/recall comparison
// (paper Figs. 16 and 17).
type Fig16Row struct {
	Network         string
	ASN             asn.ASN
	Links           int
	BdrmapIT, MAPIT PR
}

// RunFig16 scores bdrmapIT and MAP-IT over the no-in-network-VP
// dataset. With excludeLastHop it becomes the Fig. 17 variant.
func RunFig16(ds *Dataset, excludeLastHop bool) []Fig16Row {
	itRes := ds.RunBdrmapIT(nil, core.Options{})
	mRes := mapit.Infer(ds.Traces, ds.Resolver, mapit.Options{})
	links := ObservedLinks(ds.In, ds.Traces)
	opts := ScoreOptions{ExcludeLastHopOnly: excludeLastHop}

	var rows []Fig16Row
	for _, gt := range ds.gtNetworks() {
		n := 0
		for _, l := range links {
			if l.Interdomain() && l.Involves(gt.ASN) && !l.FarEchoOnly &&
				!(excludeLastHop && l.LastHopOnly) {
				n++
			}
		}
		rows = append(rows, Fig16Row{
			Network:  gt.Name,
			ASN:      gt.ASN,
			Links:    n,
			BdrmapIT: Score(links, itRes, gt.ASN, opts),
			MAPIT:    Score(links, mRes, gt.ASN, opts),
		})
	}
	return rows
}

// SweepRow is one VP-count group's result (paper Figs. 18 and 19):
// mean and standard error over the random VP subsets.
type SweepRow struct {
	NumVPs  int
	Network string
	// Precision/Recall mean and standard error across the subsets.
	PrecMean, PrecSE       float64
	RecMean, RecSE         float64
	VisibleMean, VisibleSE float64 // fraction of the full-VP visible links
}

// RunVPSweep evaluates bdrmapIT over groups of randomly chosen VP
// subsets (5 sets per size, per §7.3).
func RunVPSweep(ds *Dataset, sizes []int, setsPerSize int) []SweepRow {
	fullLinks := ObservedLinks(ds.In, ds.Traces)
	fullVisible := make(map[asn.ASN]int)
	for _, gt := range ds.gtNetworks() {
		fullVisible[gt.ASN] = VisibleLinks(fullLinks, gt.ASN)
	}
	rng := rand.New(rand.NewSource(ds.In.Cfg.Seed ^ 0x7357))
	var rows []SweepRow
	for _, size := range sizes {
		type accum struct{ prec, rec, vis []float64 }
		got := make(map[string]*accum)
		for _, gt := range ds.gtNetworks() {
			got[gt.Name] = &accum{}
		}
		for s := 0; s < setsPerSize; s++ {
			vps := append([]topo.VP{}, ds.VPs...)
			rng.Shuffle(len(vps), func(i, j int) { vps[i], vps[j] = vps[j], vps[i] })
			if size < len(vps) {
				vps = vps[:size]
			}
			traces := ds.TracesFromVPs(vps)
			res := core.Infer(traces, ds.Resolver, ds.Aliases, ds.Rels, core.Options{Workers: ds.Workers})
			links := ObservedLinks(ds.In, traces)
			for _, gt := range ds.gtNetworks() {
				pr := Score(links, res, gt.ASN, ScoreOptions{})
				a := got[gt.Name]
				a.prec = append(a.prec, pr.Precision())
				a.rec = append(a.rec, pr.Recall())
				frac := 0.0
				if fv := fullVisible[gt.ASN]; fv > 0 {
					frac = float64(VisibleLinks(links, gt.ASN)) / float64(fv)
				}
				a.vis = append(a.vis, frac)
			}
		}
		for _, gt := range ds.gtNetworks() {
			a := got[gt.Name]
			pm, pse := meanSE(a.prec)
			rm, rse := meanSE(a.rec)
			vm, vse := meanSE(a.vis)
			rows = append(rows, SweepRow{
				NumVPs: size, Network: gt.Name,
				PrecMean: pm, PrecSE: pse,
				RecMean: rm, RecSE: rse,
				VisibleMean: vm, VisibleSE: vse,
			})
		}
	}
	return rows
}

func meanSE(xs []float64) (mean, se float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var v float64
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	v /= float64(len(xs) - 1)
	return mean, math.Sqrt(v / float64(len(xs)))
}

// Fig20Row compares router-annotation accuracy under precise
// (midar+iffinder) and imprecise (kapar) alias resolution, restricted
// to IRs with multiple aliases (paper §7.4, Fig. 20).
type Fig20Row struct {
	Network      string
	ASN          asn.ASN
	MidarAcc     float64
	MidarRouters int
	KaparAcc     float64
	KaparRouters int
}

// RunFig20 reruns the alias-resolution comparison.
func RunFig20(ds *Dataset) []Fig20Row {
	midarRes := ds.RunBdrmapIT(ds.Aliases, core.Options{})
	kaparRes := ds.RunBdrmapIT(ds.KaparAliases, core.Options{})
	var rows []Fig20Row
	for _, gt := range ds.gtNetworks() {
		ma, mn := MultiAliasRouterAccuracy(ds.In, midarRes, gt.ASN)
		ka, kn := MultiAliasRouterAccuracy(ds.In, kaparRes, gt.ASN)
		rows = append(rows, Fig20Row{
			Network: gt.Name, ASN: gt.ASN,
			MidarAcc: ma, MidarRouters: mn,
			KaparAcc: ka, KaparRouters: kn,
		})
	}
	return rows
}

// MultiAliasRouterAccuracy computes, over inferred routers with at
// least two interfaces whose ground truth involves network gt, the
// fraction annotated with the correct operator. A router whose
// interfaces truly belong to different routers with different owners
// (a false alias merge) can never be correct — the mechanism by which
// imprecise aliasing hurts (§7.4).
func MultiAliasRouterAccuracy(in *topo.Internet, res *core.Result, gt asn.ASN) (float64, int) {
	correct, total := 0, 0
	for _, r := range res.Graph.Routers {
		if len(r.Interfaces) < 2 {
			continue
		}
		owners := asn.NewSet()
		for _, i := range r.Interfaces {
			if o := in.OwnerASN(i.Addr); o != asn.None {
				owners.Add(o)
			}
		}
		if !owners.Has(gt) {
			continue
		}
		total++
		if owners.Len() == 1 && r.Annotation == owners.Sorted()[0] {
			correct++
		}
	}
	if total == 0 {
		return 0, 0
	}
	return float64(correct) / float64(total), total
}

// OverallAccuracy scores an inference across every ground-truth
// network at once (used by the no-alias delta and ablations).
func (ds *Dataset) OverallAccuracy(res Operators) (float64, int) {
	links := ObservedLinks(ds.In, ds.Traces)
	correct, total := 0, 0
	for _, gt := range ds.gtNetworks() {
		for _, l := range links {
			if !l.Interdomain() || !l.Involves(gt.ASN) || l.FarEchoOnly {
				continue
			}
			total++
			if res.OperatorOf(l.NearAddr) == l.NearASN && res.OperatorOf(l.FarAddr) == l.FarASN {
				correct++
			}
		}
	}
	if total == 0 {
		return 0, 0
	}
	return float64(correct) / float64(total), total
}

// AblationRow records one heuristic toggle's effect.
type AblationRow struct {
	Name     string
	Accuracy float64
	Links    int
}

// RunAblations measures each heuristic's contribution by disabling it.
func RunAblations(ds *Dataset) []AblationRow {
	cases := []struct {
		name string
		opts core.Options
	}{
		{"all heuristics", core.Options{}},
		{"no last-hop destinations (§5.2)", core.Options{DisableLastHopDest: true}},
		{"no third-party test (§6.1.1)", core.Options{DisableThirdParty: true}},
		{"no reallocated-prefix fix (§6.1.2)", core.Options{DisableRealloc: true}},
		{"no voting exceptions (§6.1.3)", core.Options{DisableExceptions: true}},
		{"no hidden-AS check (§6.1.5)", core.Options{DisableHiddenAS: true}},
		{"no dest-coverage tie-break (extension)", core.Options{DisableDestTieBreak: true}},
	}
	var rows []AblationRow
	for _, c := range cases {
		res := ds.RunBdrmapIT(nil, c.opts)
		acc, n := ds.OverallAccuracy(res)
		rows = append(rows, AblationRow{Name: c.name, Accuracy: acc, Links: n})
	}
	return rows
}

// FormatTable renders rows of labelled float cells as an aligned text
// table (the harness's output form for every figure).
func FormatTable(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", width[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return sb.String()
}

// SortedGTNames returns the dataset's ground-truth network names in
// presentation order.
func (ds *Dataset) SortedGTNames() []string {
	var names []string
	for _, gt := range ds.gtNetworks() {
		names = append(names, gt.Name)
	}
	sort.Strings(names)
	return names
}
