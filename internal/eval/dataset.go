// Package eval scores bdrmapIT and its comparators against the
// simulator's ground truth and regenerates every table and figure of
// the paper's evaluation (§7). See EXPERIMENTS.md for the experiment
// index and recorded results.
package eval

import (
	"net/netip"
	"sort"

	"repro/internal/alias"
	"repro/internal/asn"
	"repro/internal/asrel"
	"repro/internal/ip2as"
	"repro/internal/netutil"
	"repro/internal/topo"
	"repro/internal/traceroute"
)

// Dataset bundles one simulated measurement campaign with every input
// bdrmapIT consumes, mirroring an ITDK release: traceroutes from many
// VPs, a BGP-derived IP→AS resolver, inferred AS relationships, and
// alias-resolution runs.
type Dataset struct {
	In      *topo.Internet
	VPs     []topo.VP
	Traces  []*traceroute.Trace
	Targets []netip.Addr

	Resolver *ip2as.Resolver
	// Rels is inferred from the simulated BGP paths (as CAIDA's
	// relationship files are) — BGP-invisible relationships are
	// genuinely missing, as in the real inputs.
	Rels *asrel.Graph

	// Aliases is the midar+iffinder alias run over observed addresses.
	Aliases *alias.Sets
	// KaparAliases additionally includes the imprecise analytical
	// technique (§7.4).
	KaparAliases *alias.Sets

	// GT names the ground-truth validation networks.
	GT map[string]asn.ASN

	// Workers is the default worker count for inference runs launched
	// through this dataset (0 = GOMAXPROCS). Worker count never changes
	// an inference — the engine shards deterministically — only the
	// wall-clock time of the experiments.
	Workers int
}

// BuildDataset generates an Internet from cfg, selects numVPs vantage
// points (excluding the ground-truth networks when excludeGT is set —
// the §7.2 "no in-network VP" regime), runs the traceroute campaign,
// and performs alias resolution over the observed addresses.
func BuildDataset(cfg topo.Config, numVPs int, excludeGT bool) (*Dataset, error) {
	in, err := topo.Generate(cfg)
	if err != nil {
		return nil, err
	}
	ds := &Dataset{In: in, GT: in.GroundTruthNetworks()}
	exclude := asn.NewSet()
	if excludeGT {
		for _, a := range ds.GT {
			exclude.Add(a)
		}
	}
	ds.VPs = in.SelectVPs(numVPs, exclude)
	ds.Targets = in.Targets()
	ds.Traces = in.RunCampaign(ds.VPs, ds.Targets)
	ds.Resolver = in.Resolver()
	ds.Rels = asrel.Infer(in.ASPaths())
	ds.resolveAliases()
	return ds, nil
}

// resolveAliases runs the midar+iffinder and kapar alias techniques
// over the addresses observed in the campaign.
func (ds *Dataset) resolveAliases() {
	addrs := ObservedAddrs(ds.Traces)
	p := ds.In.Prober()
	midar := alias.MIDAR(p, addrs, alias.MIDAROptions{})
	iff := alias.Iffinder(p, addrs)
	ds.Aliases = alias.Merge(midar, iff)
	isIXP := func(a netip.Addr) bool { return ds.In.IXPPrefixes.Contains(a) }
	ds.KaparAliases = alias.Merge(midar, iff, alias.Kapar(ds.Traces, isIXP))
}

// ObservedAddrs returns the sorted set of non-special addresses that
// replied in the trace archive.
func ObservedAddrs(traces []*traceroute.Trace) []netip.Addr {
	seen := make(map[netip.Addr]bool)
	for _, t := range traces {
		for _, h := range t.Hops {
			if !netutil.IsSpecial(h.Addr) {
				seen[h.Addr] = true
			}
		}
	}
	out := make([]netip.Addr, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// TracesFromVPs filters the archive to a subset of vantage points
// (the §7.3 VP-count sweep).
func (ds *Dataset) TracesFromVPs(vps []topo.VP) []*traceroute.Trace {
	names := make(map[string]bool, len(vps))
	for _, vp := range vps {
		names[vp.Name] = true
	}
	var out []*traceroute.Trace
	for _, t := range ds.Traces {
		if names[t.VP] {
			out = append(out, t)
		}
	}
	return out
}

// EmptyAliases returns an alias partition with no groups: every
// interface becomes its own IR (the §7.4 no-alias-resolution run).
func EmptyAliases() *alias.Sets { return alias.NewSets() }
