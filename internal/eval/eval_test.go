package eval

import (
	"net/netip"
	"testing"

	"repro/internal/asn"
	"repro/internal/core"
	"repro/internal/topo"
)

// fakeOps maps addresses to inferred operators for metric tests.
type fakeOps map[string]asn.ASN

func (f fakeOps) OperatorOf(a netip.Addr) asn.ASN { return f[a.String()] }

func mkLink(near, far string, nearAS, farAS asn.ASN, echoOnly, lastHopOnly bool) *LinkObs {
	return &LinkObs{
		NearAddr: netip.MustParseAddr(near), FarAddr: netip.MustParseAddr(far),
		NearASN: nearAS, FarASN: farAS,
		FarEchoOnly: echoOnly, LastHopOnly: lastHopOnly,
	}
}

func TestScoreTPFPFN(t *testing.T) {
	links := []*LinkObs{
		mkLink("1.0.0.1", "2.0.0.1", 100, 200, false, false), // correct
		mkLink("1.0.0.2", "2.0.0.2", 100, 200, false, false), // wrong far
		mkLink("1.0.0.3", "1.0.0.4", 100, 100, false, false), // internal, FP if claimed
		mkLink("1.0.0.5", "3.0.0.1", 100, 300, true, false),  // echo-only far
	}
	ops := fakeOps{
		"1.0.0.1": 100, "2.0.0.1": 200, // TP
		"1.0.0.2": 100, "2.0.0.2": 300, // FP (wrong pair) + FN
		"1.0.0.3": 100, "1.0.0.4": 200, // FP (truth internal)
		"1.0.0.5": 100, "3.0.0.1": 400, // echo-only: FP only (excluded from recall)
	}
	pr := Score(links, ops, 100, ScoreOptions{})
	if pr.TP != 1 || pr.FP != 3 || pr.FN != 1 {
		t.Errorf("PR = %+v, want TP=1 FP=3 FN=1", pr)
	}
	if pr.Precision() != 0.25 {
		t.Errorf("precision = %v", pr.Precision())
	}
	if pr.Recall() != 0.5 {
		t.Errorf("recall = %v", pr.Recall())
	}
}

func TestScoreExcludeLastHopOnly(t *testing.T) {
	links := []*LinkObs{
		mkLink("1.0.0.1", "2.0.0.1", 100, 200, false, true),
		mkLink("1.0.0.2", "2.0.0.2", 100, 200, false, false),
	}
	ops := fakeOps{"1.0.0.1": 100, "2.0.0.1": 200, "1.0.0.2": 100, "2.0.0.2": 200}
	pr := Score(links, ops, 100, ScoreOptions{ExcludeLastHopOnly: true})
	if pr.TP != 1 || pr.FN != 0 {
		t.Errorf("PR = %+v", pr)
	}
}

func TestScoreIgnoresOtherNetworks(t *testing.T) {
	links := []*LinkObs{
		mkLink("5.0.0.1", "6.0.0.1", 500, 600, false, false),
	}
	ops := fakeOps{"5.0.0.1": 500, "6.0.0.1": 600}
	pr := Score(links, ops, 100, ScoreOptions{})
	if pr.TP != 0 || pr.FP != 0 || pr.FN != 0 {
		t.Errorf("unrelated link counted: %+v", pr)
	}
}

func TestAccuracy(t *testing.T) {
	links := []*LinkObs{
		mkLink("1.0.0.1", "2.0.0.1", 100, 200, false, false),
		mkLink("1.0.0.2", "2.0.0.2", 100, 200, false, false),
	}
	ops := fakeOps{"1.0.0.1": 100, "2.0.0.1": 200, "1.0.0.2": 100, "2.0.0.2": 999}
	acc, n := Accuracy(links, ops, 100)
	if n != 2 || acc != 0.5 {
		t.Errorf("accuracy = %v over %d", acc, n)
	}
}

func TestVisibleLinks(t *testing.T) {
	links := []*LinkObs{
		mkLink("1.0.0.1", "2.0.0.1", 100, 200, false, false),
		mkLink("1.0.0.3", "1.0.0.4", 100, 100, false, false), // internal
		mkLink("5.0.0.1", "6.0.0.1", 500, 600, false, false), // other nets
	}
	if got := VisibleLinks(links, 100); got != 1 {
		t.Errorf("visible = %d", got)
	}
}

func TestPRZeroDenominators(t *testing.T) {
	var pr PR
	if pr.Precision() != 0 || pr.Recall() != 0 {
		t.Error("empty PR should be 0/0 → 0")
	}
}

// TestEndToEndSmall runs the full pipeline on the small topology and
// asserts quality floors: the experiments in EXPERIMENTS.md rely on the
// default-scale run; this guards against regressions cheaply.
func TestEndToEndSmall(t *testing.T) {
	ds, err := BuildDataset(topo.SmallConfig(1), 15, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Traces) == 0 || len(ds.VPs) == 0 {
		t.Fatal("empty dataset")
	}
	res := ds.RunBdrmapIT(nil, core.Options{})
	if !res.Converged {
		t.Error("inference did not converge")
	}
	links := ObservedLinks(ds.In, ds.Traces)
	if len(links) == 0 {
		t.Fatal("no observed links")
	}
	total := PR{}
	for _, gt := range ds.GT {
		pr := Score(links, res, gt, ScoreOptions{})
		total.TP += pr.TP
		total.FP += pr.FP
		total.FN += pr.FN
	}
	if total.TP == 0 {
		t.Fatal("no true positives at all")
	}
	if p := total.Precision(); p < 0.75 {
		t.Errorf("aggregate precision %.3f below floor", p)
	}
	if r := total.Recall(); r < 0.75 {
		t.Errorf("aggregate recall %.3f below floor", r)
	}
}

// TestObservedLinksGroundTruth checks the scorer's link extraction:
// every observed link's truth routers must own the reply addresses.
func TestObservedLinksGroundTruth(t *testing.T) {
	ds, err := BuildDataset(topo.SmallConfig(2), 8, true)
	if err != nil {
		t.Fatal(err)
	}
	links := ObservedLinks(ds.In, ds.Traces)
	for _, l := range links {
		if ds.In.OwnerASN(l.NearAddr) != l.NearASN {
			t.Fatalf("near truth mismatch at %v", l.NearAddr)
		}
		if ds.In.OwnerASN(l.FarAddr) != l.FarASN {
			t.Fatalf("far truth mismatch at %v", l.FarAddr)
		}
	}
}

func TestTracesFromVPsFilter(t *testing.T) {
	ds, err := BuildDataset(topo.SmallConfig(3), 6, true)
	if err != nil {
		t.Fatal(err)
	}
	sub := ds.TracesFromVPs(ds.VPs[:2])
	if len(sub) == 0 || len(sub) >= len(ds.Traces) {
		t.Errorf("subset size %d of %d", len(sub), len(ds.Traces))
	}
	names := map[string]bool{ds.VPs[0].Name: true, ds.VPs[1].Name: true}
	for _, tr := range sub {
		if !names[tr.VP] {
			t.Fatalf("foreign VP %s in subset", tr.VP)
		}
	}
}

func TestMeanSE(t *testing.T) {
	m, se := meanSE([]float64{1, 1, 1})
	if m != 1 || se != 0 {
		t.Errorf("constant series: %v ± %v", m, se)
	}
	m, se = meanSE([]float64{0, 2})
	if m != 1 || se <= 0 {
		t.Errorf("spread series: %v ± %v", m, se)
	}
	if m, se = meanSE(nil); m != 0 || se != 0 {
		t.Error("empty series")
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable([]string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	if out == "" || len(out) < 10 {
		t.Errorf("table output: %q", out)
	}
}

// TestIPv6Parity: the structure-preserving embedding must yield nearly
// identical link accuracy across families. The only family-dependent
// heuristic is the §6.1.2 reallocated-prefix grouping granularity (/24
// for IPv4, /48 for IPv6 — matching operational allocation units), so
// a small tolerance is allowed.
func TestIPv6Parity(t *testing.T) {
	ds, err := BuildDataset(topo.SmallConfig(6), 10, true)
	if err != nil {
		t.Fatal(err)
	}
	p := RunIPv6Parity(ds)
	if p.V4Links == 0 || p.V6Links == 0 {
		t.Fatalf("no links scored: %+v", p)
	}
	if p.V4Links != p.V6Links {
		t.Errorf("link counts differ: %d vs %d", p.V4Links, p.V6Links)
	}
	diff := p.V4Accuracy - p.V6Accuracy
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.02 {
		t.Errorf("family-dependent behaviour beyond realloc granularity: v4=%.4f v6=%.4f",
			p.V4Accuracy, p.V6Accuracy)
	}
}

// TestAliasImpactRuns exercises the §7.4 future-work experiment.
func TestAliasImpactRuns(t *testing.T) {
	ds, err := BuildDataset(topo.SmallConfig(7), 10, true)
	if err != nil {
		t.Fatal(err)
	}
	ai := RunAliasImpact(ds)
	if ai.MultiIRs == 0 {
		t.Fatal("no multi-interface IRs")
	}
	if ai.Fixed+ai.Broken+ai.Neutral != ai.MultiIRs {
		t.Errorf("classes do not partition: %+v", ai)
	}
}

// TestExperimentRunners drives every figure's runner at small scale —
// the same code paths the harness and benches use.
func TestExperimentRunners(t *testing.T) {
	ds, err := BuildDataset(topo.SmallConfig(9), 12, true)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("fig15", func(t *testing.T) {
		rows := RunFig15(ds)
		if len(rows) != 4 {
			t.Fatalf("rows = %d", len(rows))
		}
		for _, r := range rows {
			if r.Links == 0 {
				t.Errorf("%s: no links", r.Network)
			}
			if r.BdrmapIT < 0.5 {
				t.Errorf("%s: bdrmapIT accuracy %.2f implausible", r.Network, r.BdrmapIT)
			}
		}
	})

	t.Run("fig16+17", func(t *testing.T) {
		for _, exclude := range []bool{false, true} {
			rows := RunFig16(ds, exclude)
			if len(rows) != 4 {
				t.Fatalf("rows = %d", len(rows))
			}
			var itR, mR float64
			for _, r := range rows {
				itR += r.BdrmapIT.Recall()
				mR += r.MAPIT.Recall()
			}
			if itR <= mR {
				t.Errorf("exclude=%v: bdrmapIT recall (%.2f) not ahead of MAP-IT (%.2f)",
					exclude, itR/4, mR/4)
			}
		}
	})

	t.Run("vpsweep", func(t *testing.T) {
		rows := RunVPSweep(ds, []int{4, 8}, 2)
		if len(rows) != 8 {
			t.Fatalf("rows = %d", len(rows))
		}
		// Visible fraction must not shrink with more VPs (averaged).
		var lo, hi float64
		for _, r := range rows {
			if r.NumVPs == 4 {
				lo += r.VisibleMean
			} else {
				hi += r.VisibleMean
			}
		}
		if hi < lo {
			t.Errorf("visible links shrank with more VPs: %.2f → %.2f", lo/4, hi/4)
		}
	})

	t.Run("fig20", func(t *testing.T) {
		rows := RunFig20(ds)
		if len(rows) != 4 {
			t.Fatalf("rows = %d", len(rows))
		}
		var ma, ka float64
		for _, r := range rows {
			ma += r.MidarAcc
			ka += r.KaparAcc
		}
		if ma < ka {
			t.Errorf("kapar (%.2f) outscored midar (%.2f)", ka/4, ma/4)
		}
	})

	t.Run("ablations", func(t *testing.T) {
		rows := RunAblations(ds)
		if len(rows) != 7 {
			t.Fatalf("rows = %d", len(rows))
		}
		for _, r := range rows {
			if r.Links == 0 || r.Accuracy == 0 {
				t.Errorf("%s: empty result", r.Name)
			}
		}
	})

	t.Run("overall-accuracy", func(t *testing.T) {
		res := ds.RunBdrmapIT(nil, core.Options{})
		acc, n := ds.OverallAccuracy(res)
		if n == 0 || acc < 0.5 {
			t.Errorf("overall accuracy %.2f over %d", acc, n)
		}
	})
}

// TestRelAccuracy validates the relationship-inference input quality:
// most visible transit edges must be inferred with the right
// orientation, and spurious edges must be rare.
func TestRelAccuracy(t *testing.T) {
	ds, err := BuildDataset(topo.SmallConfig(4), 8, true)
	if err != nil {
		t.Fatal(err)
	}
	ra := RunRelAccuracy(ds)
	totalP2C := ra.P2CCorrect + ra.P2CWrongType + ra.P2CMissing
	if totalP2C == 0 {
		t.Fatal("no transit edges scored")
	}
	// The small topology has few collectors, so fewer paths are
	// clique-anchored and more top links abstain from transit voting;
	// the default-scale run sits above 0.9 (see the harness "rels"
	// experiment).
	if frac := float64(ra.P2CCorrect) / float64(totalP2C); frac < 0.7 {
		t.Errorf("p2c inference %.2f below floor (%+v)", frac, ra)
	}
	if ra.Spurious > totalP2C/10 {
		t.Errorf("too many spurious edges: %d (%+v)", ra.Spurious, ra)
	}
}

// TestErrorCensus checks the diagnostic classifier's invariants.
func TestErrorCensus(t *testing.T) {
	ds, err := BuildDataset(topo.SmallConfig(5), 10, true)
	if err != nil {
		t.Fatal(err)
	}
	ec := RunErrorCensus(ds)
	if ec.Total == 0 {
		t.Fatal("no IRs classified")
	}
	sum := 0
	for _, n := range ec.PerClass {
		sum += n
	}
	if sum != ec.Wrong {
		t.Errorf("classes (%d) do not account for all errors (%d)", sum, ec.Wrong)
	}
	if float64(ec.Wrong)/float64(ec.Total) > 0.15 {
		t.Errorf("error rate implausibly high: %d/%d", ec.Wrong, ec.Total)
	}
	if len(ec.ClassList) != len(ec.PerClass) {
		t.Error("class list incomplete")
	}
}
