package simnet

import (
	"os"
	"path/filepath"
	"testing"
)

func TestGenerateDefaults(t *testing.T) {
	n, err := Generate(Options{Small: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.ASes == 0 || st.Routers == 0 || st.Traces == 0 {
		t.Fatalf("empty stats: %+v", st)
	}
	gt := n.GroundTruthNetworks()
	if len(gt) != 4 {
		t.Errorf("ground truth networks: %v", gt)
	}
	if len(n.VPNames()) == 0 {
		t.Error("no VP names")
	}
}

func TestGenerateSingleVP(t *testing.T) {
	n, err := Generate(Options{Small: true, Seed: 3, SingleVPIn: "Tier1"})
	if err != nil {
		t.Fatal(err)
	}
	if got := n.VPNames(); len(got) != 1 {
		t.Errorf("single-VP mode has %d VPs", len(got))
	}
	if _, err := Generate(Options{Small: true, SingleVPIn: "Nope"}); err == nil {
		t.Error("unknown network accepted")
	}
}

func TestWriteDatasetAndGroundTruth(t *testing.T) {
	n, err := Generate(Options{Small: true, Seed: 4, NumVPs: 5})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	p, err := n.WriteDataset(filepath.Join(dir, "ds"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{
		p.Traceroutes, p.RIB, p.Delegations, p.IXPPrefixes,
		p.Relationships, p.Aliases, p.GroundTruth,
	} {
		info, err := os.Stat(f)
		if err != nil {
			t.Fatalf("missing output %s: %v", f, err)
		}
		if info.Size() == 0 {
			t.Errorf("empty output %s", f)
		}
	}
	truth, err := ReadGroundTruth(p.GroundTruth)
	if err != nil {
		t.Fatal(err)
	}
	if len(truth) == 0 {
		t.Fatal("empty ground truth")
	}
	for addr, owner := range truth {
		got, ok := n.OperatorOf(addr)
		if !ok || got != owner {
			t.Fatalf("ground truth mismatch at %v: file=%d live=%d ok=%v", addr, owner, got, ok)
		}
	}
}

func TestReadGroundTruthErrors(t *testing.T) {
	if _, err := ReadGroundTruth("/nonexistent"); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.txt")
	os.WriteFile(bad, []byte("not an addr 5\n"), 0o644)
	if _, err := ReadGroundTruth(bad); err == nil {
		t.Error("malformed line accepted")
	}
}
