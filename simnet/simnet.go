// Package simnet generates synthetic Internet measurement datasets for
// exercising and evaluating bdrmapit without access to measurement
// infrastructure. A generated network ships everything the tool
// consumes — traceroute campaigns, a BGP RIB, RIR delegations, IXP
// prefixes, AS relationships, and alias-resolution nodes — plus the
// ground truth (true router ownership) to score inferences against.
//
// The underlying simulator reproduces the measurement artifacts the
// bdrmapIT heuristics exist to handle: provider-numbered transit links,
// IXP peering LANs, reallocated prefixes, firewalled edge networks,
// third-party replies, hidden ASes, and unannounced address space. See
// DESIGN.md for the full substitution rationale.
package simnet

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/alias"
	"repro/internal/asn"
	"repro/internal/asrel"
	"repro/internal/bgp"
	"repro/internal/ckpt"
	"repro/internal/collect"
	"repro/internal/eval"
	"repro/internal/mrt"
	"repro/internal/pfx2as"
	"repro/internal/rir"
	"repro/internal/topo"
	"repro/internal/traceroute"
)

// Options selects the generated scale and campaign shape.
type Options struct {
	// Seed makes generation reproducible (default 2018).
	Seed int64
	// Small selects a ~50-AS topology instead of the default ~400-AS
	// one. Use it for examples and tests.
	Small bool
	// NumVPs is the number of vantage points (default 100, capped to
	// the available pool).
	NumVPs int
	// IncludeGroundTruthVPs allows VPs inside the four ground-truth
	// networks (the paper's §7.2 methodology excludes them).
	IncludeGroundTruthVPs bool
	// SingleVPIn, when set to one of "Tier1", "LAccess", "RE1", "RE2",
	// runs the campaign from a single VP inside that ground-truth
	// network (the §7.1 bdrmap regression scenario).
	SingleVPIn string
}

// Network is a generated Internet plus its measurement campaign.
type Network struct {
	ds  *eval.Dataset
	in  *topo.Internet
	vps []topo.VP
}

// Generate builds the network and runs the traceroute campaign.
func Generate(opts Options) (*Network, error) {
	if opts.Seed == 0 {
		opts.Seed = 2018
	}
	if opts.NumVPs == 0 {
		opts.NumVPs = 100
	}
	cfg := topo.DefaultConfig(opts.Seed)
	if opts.Small {
		cfg = topo.SmallConfig(opts.Seed)
		if opts.NumVPs > 20 {
			opts.NumVPs = 20
		}
	}
	ds, err := eval.BuildDataset(cfg, opts.NumVPs, !opts.IncludeGroundTruthVPs)
	if err != nil {
		return nil, err
	}
	n := &Network{ds: ds, in: ds.In, vps: ds.VPs}
	if opts.SingleVPIn != "" {
		gt, ok := ds.GT[opts.SingleVPIn]
		if !ok {
			return nil, fmt.Errorf("simnet: unknown ground-truth network %q", opts.SingleVPIn)
		}
		vp, ok := ds.In.VPIn(gt)
		if !ok {
			return nil, fmt.Errorf("simnet: no VP available in %q", opts.SingleVPIn)
		}
		n.vps = []topo.VP{vp}
		ds.Traces = ds.In.RunCampaign(n.vps, ds.Targets)
		// Redo alias resolution over the single-VP observations.
		addrs := eval.ObservedAddrs(ds.Traces)
		p := ds.In.Prober()
		ds.Aliases = alias.Merge(
			alias.MIDAR(p, addrs, alias.MIDAROptions{}),
			alias.Iffinder(p, addrs))
	}
	return n, nil
}

// Stats summarizes the generated network.
type Stats struct {
	ASes, Routers, Interfaces, Traces, VPs, Targets, GroundTruthLinks int
}

// Stats returns generation summary counts.
func (n *Network) Stats() Stats {
	return Stats{
		ASes:             len(n.in.ASList),
		Routers:          len(n.in.Routers),
		Interfaces:       len(n.in.IfaceByAddr),
		Traces:           len(n.ds.Traces),
		VPs:              len(n.vps),
		Targets:          len(n.ds.Targets),
		GroundTruthLinks: len(n.in.TrueInterdomainLinks()),
	}
}

// GroundTruthNetworks names the four validation networks (Tier1,
// LAccess, RE1, RE2) and their AS numbers.
func (n *Network) GroundTruthNetworks() map[string]uint32 {
	out := make(map[string]uint32)
	for k, v := range n.ds.GT {
		out[k] = uint32(v)
	}
	return out
}

// OperatorOf returns the ground-truth operator of the router owning
// addr (ok=false for unknown addresses).
func (n *Network) OperatorOf(addr netip.Addr) (uint32, bool) {
	a := n.in.OwnerASN(addr)
	return uint32(a), a != asn.None
}

// VPNames lists the campaign's vantage point names.
func (n *Network) VPNames() []string {
	out := make([]string, len(n.vps))
	for i, vp := range n.vps {
		out[i] = vp.Name
	}
	return out
}

// DatasetPaths names the files WriteDataset produces.
type DatasetPaths struct {
	Traceroutes   string // JSON-lines traceroute archive
	RIB           string // BGP RIB ("prefix|as path")
	RIBMRT        string // the same RIB as an MRT TABLE_DUMP_V2 file
	Prefix2AS     string // CAIDA routeviews-prefix2as form of the RIB
	Delegations   string // RIR extended delegation file
	IXPPrefixes   string // IXP peering-LAN prefix list
	Relationships string // CAIDA serial-1 AS relationships (inferred from the RIB)
	Aliases       string // ITDK-format alias nodes (midar+iffinder)
	GroundTruth   string // "address asn" ground-truth operator lines
}

// WriteDataset materializes the campaign into dir, creating it if
// needed, and returns the file paths.
func (n *Network) WriteDataset(dir string) (*DatasetPaths, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("simnet: %w", err)
	}
	p := &DatasetPaths{
		Traceroutes:   filepath.Join(dir, "traces.jsonl"),
		RIB:           filepath.Join(dir, "rib.txt"),
		RIBMRT:        filepath.Join(dir, "rib.mrt"),
		Prefix2AS:     filepath.Join(dir, "prefix2as.txt"),
		Delegations:   filepath.Join(dir, "delegated-extended.txt"),
		IXPPrefixes:   filepath.Join(dir, "ixp-prefixes.txt"),
		Relationships: filepath.Join(dir, "as-rel.txt"),
		Aliases:       filepath.Join(dir, "nodes.txt"),
		GroundTruth:   filepath.Join(dir, "groundtruth.txt"),
	}
	if err := writeFile(p.Traceroutes, func(f io.Writer) error {
		w := traceroute.NewJSONLWriter(f)
		for _, t := range n.ds.Traces {
			if err := w.Write(t); err != nil {
				return err
			}
		}
		return w.Flush()
	}); err != nil {
		return nil, err
	}
	if err := writeFile(p.RIB, func(f io.Writer) error {
		return bgp.WriteRoutes(f, n.in.Routes)
	}); err != nil {
		return nil, err
	}
	if err := writeFile(p.RIBMRT, func(f io.Writer) error {
		return mrt.Write(f, n.in.Routes)
	}); err != nil {
		return nil, err
	}
	if err := writeFile(p.Prefix2AS, func(f io.Writer) error {
		return pfx2as.Write(f, pfx2as.FromRoutes(n.in.Routes))
	}); err != nil {
		return nil, err
	}
	if err := writeFile(p.Delegations, func(f io.Writer) error {
		return rir.WriteRecords(f, "simrir", n.in.RIRRecords())
	}); err != nil {
		return nil, err
	}
	if err := writeFile(p.IXPPrefixes, func(f io.Writer) error {
		return n.in.IXPPrefixes.WriteList(f)
	}); err != nil {
		return nil, err
	}
	if err := writeFile(p.Relationships, func(f io.Writer) error {
		rels := asrel.Infer(n.in.ASPaths())
		return rels.Write(f)
	}); err != nil {
		return nil, err
	}
	if err := writeFile(p.Aliases, func(f io.Writer) error {
		return n.ds.Aliases.WriteNodes(f)
	}); err != nil {
		return nil, err
	}
	if err := writeFile(p.GroundTruth, func(f io.Writer) error {
		for _, addr := range n.in.ObservedAddrs() {
			if _, err := fmt.Fprintf(f, "%s %d\n", addr, uint32(n.in.OwnerASN(addr))); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return p, nil
}

func writeFile(path string, fill func(io.Writer) error) error {
	if err := ckpt.AtomicWrite(path, fill); err != nil {
		return fmt.Errorf("simnet: writing %s: %w", path, err)
	}
	return nil
}

// ReadGroundTruth parses a ground-truth file written by WriteDataset
// into an address → operator map.
func ReadGroundTruth(path string) (map[netip.Addr]uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("simnet: %w", err)
	}
	defer f.Close()
	out := make(map[netip.Addr]uint32)
	sc := bufio.NewScanner(f)
	lineno := 0
	for sc.Scan() {
		lineno++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("simnet: ground truth line %d: want 'addr asn'", lineno)
		}
		a, err := netip.ParseAddr(fields[0])
		if err != nil {
			return nil, fmt.Errorf("simnet: ground truth line %d: %w", lineno, err)
		}
		owner, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("simnet: ground truth line %d: %w", lineno, err)
		}
		out[a] = uint32(owner)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("simnet: %w", err)
	}
	return out, nil
}

// CollectOutcome summarizes a reactive collection run.
type CollectOutcome struct {
	Traces   int
	Prefixes int
	Reprobed int
}

// CollectDataset replaces the network's campaign with a bdrmap-style
// reactive collection run from a single VP inside the named
// ground-truth network (Tier1, LAccess, RE1, RE2): one traceroute per
// routed prefix, reactive re-probes of prefixes whose traces never
// reached the target's address space, and alias resolution over the
// discovered addresses. Subsequent WriteDataset calls export the
// collected data.
func (n *Network) CollectDataset(network string) (CollectOutcome, error) {
	gt, ok := n.ds.GT[network]
	if !ok {
		return CollectOutcome{}, fmt.Errorf("simnet: unknown ground-truth network %q", network)
	}
	vp, ok := n.in.VPIn(gt)
	if !ok {
		return CollectOutcome{}, fmt.Errorf("simnet: no VP available in %q", network)
	}
	prefixes := n.in.RoutedPrefixes()
	res := collect.Run(n.in.Engine(vp), prefixes, collect.Options{
		Resolver: n.ds.Resolver,
	})
	n.vps = []topo.VP{vp}
	n.ds.Traces = res.Traces
	n.ds.Aliases = res.Aliases
	return CollectOutcome{
		Traces:   len(res.Traces),
		Prefixes: len(prefixes),
		Reprobed: res.Reprobed,
	}, nil
}
