// Reactive collection: the original bdrmap workflow end to end. The
// data-collection component traceroutes every routed prefix from a
// single vantage point, reactively re-probing prefixes whose traces
// never reached the target's address space, and resolves aliases over
// the discovered interfaces — then the inference maps the VP network's
// borders from the collected bundle.
package main

import (
	"fmt"
	"log"
	"os"

	bdrmapit "repro"
	"repro/simnet"
)

func main() {
	log.SetFlags(0)

	net, err := simnet.Generate(simnet.Options{Small: true, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	gt := net.GroundTruthNetworks()
	vpNet := gt["LAccess"]

	// 1. Reactive collection from inside the large access network.
	outcome, err := net.CollectDataset("LAccess")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected %d traceroutes over %d routed prefixes (%d reactively re-probed)\n",
		outcome.Traces, outcome.Prefixes, outcome.Reprobed)

	dir, err := os.MkdirTemp("", "bdrmapit-reactive")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	paths, err := net.WriteDataset(dir)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Inference over the collected bundle.
	res, err := bdrmapit.Run(bdrmapit.Sources{
		TraceroutePaths:     []string{paths.Traceroutes},
		BGPRIBPaths:         []string{paths.RIBMRT}, // MRT form, as Routeviews ships it
		RIRDelegationPaths:  []string{paths.Delegations},
		IXPPrefixListPaths:  []string{paths.IXPPrefixes},
		ASRelationshipPaths: []string{paths.Relationships},
		AliasNodePaths:      []string{paths.Aliases},
	}, bdrmapit.Options{})
	if err != nil {
		log.Fatal(err)
	}

	neighbors := map[uint32]bool{}
	for _, l := range res.InterdomainLinks() {
		switch vpNet {
		case l.NearAS:
			neighbors[l.FarAS] = true
		case l.FarAS:
			neighbors[l.NearAS] = true
		}
	}
	fmt.Printf("AS%d interconnects with %d networks (from %d inferred links total)\n",
		vpNet, len(neighbors), len(res.InterdomainLinks()))

	// 3. Score the borders against ground truth.
	truth, err := simnet.ReadGroundTruth(paths.GroundTruth)
	if err != nil {
		log.Fatal(err)
	}
	correct, total := 0, 0
	for _, l := range res.InterdomainLinks() {
		if l.NearAS != vpNet && l.FarAS != vpNet {
			continue
		}
		total++
		if truth[l.FarAddr] == l.FarAS {
			correct++
		}
	}
	if total > 0 {
		fmt.Printf("far-side operators correct for %.1f%% of the %d border links\n",
			100*float64(correct)/float64(total), total)
	}
}
