// Internet-wide border mapping: the MAP-IT scenario generalized (paper
// §7.2). Traceroutes from many vantage points in many networks are
// aggregated and every observed router is annotated with its operating
// AS — no VP inside the networks of interest.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	bdrmapit "repro"
	"repro/simnet"
)

func main() {
	log.SetFlags(0)

	net, err := simnet.Generate(simnet.Options{Small: true, Seed: 99, NumVPs: 20})
	if err != nil {
		log.Fatal(err)
	}
	st := net.Stats()
	fmt.Printf("campaign: %d VPs x %d targets = %d traceroutes\n",
		st.VPs, st.Targets, st.Traces)

	dir, err := os.MkdirTemp("", "bdrmapit-internetwide")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	paths, err := net.WriteDataset(dir)
	if err != nil {
		log.Fatal(err)
	}
	res, err := bdrmapit.Run(bdrmapit.Sources{
		TraceroutePaths:    []string{paths.Traceroutes},
		BGPRIBPaths:        []string{paths.RIB},
		RIRDelegationPaths: []string{paths.Delegations},
		IXPPrefixListPaths: []string{paths.IXPPrefixes},
		// No relationship file: inferred from the RIB's AS paths.
		AliasNodePaths: []string{paths.Aliases},
	}, bdrmapit.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("annotated %d routers; %d refinement iterations (converged=%v)\n",
		res.NumRouters(), res.Iterations, res.Converged)

	// The networks with the most inferred interdomain links — the view
	// a congestion or resilience study would start from.
	degree := make(map[uint32]int)
	for _, pair := range res.ASLinks() {
		degree[pair[0]]++
		degree[pair[1]]++
	}
	type kv struct {
		as uint32
		n  int
	}
	var top []kv
	for a, n := range degree {
		top = append(top, kv{a, n})
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].n != top[j].n {
			return top[i].n > top[j].n
		}
		return top[i].as < top[j].as
	})
	fmt.Println("most-connected networks by inferred AS adjacencies:")
	for i, e := range top {
		if i == 10 {
			break
		}
		fmt.Printf("  AS%-6d %3d adjacencies\n", e.as, e.n)
	}

	// Per-ground-truth-network router accuracy.
	truth, err := simnet.ReadGroundTruth(paths.GroundTruth)
	if err != nil {
		log.Fatal(err)
	}
	gts := net.GroundTruthNetworks()
	var names []string
	for k := range gts {
		names = append(names, k)
	}
	sort.Strings(names)
	fmt.Println("router-operator accuracy for the validation networks:")
	for _, name := range names {
		want := gts[name]
		correct, total := 0, 0
		for addr, owner := range truth {
			if owner != want {
				continue
			}
			inferred, ok := res.RouterOperator(addr)
			if !ok {
				continue
			}
			total++
			if inferred == owner {
				correct++
			}
		}
		if total == 0 {
			continue
		}
		fmt.Printf("  %-8s AS%-6d %.1f%% of %d observed interfaces\n",
			name, want, 100*float64(correct)/float64(total), total)
	}
}
