// VP sweep: how inference coverage and stability change with the number
// of vantage points (paper §7.3, Figs. 18–19). The full campaign is
// generated once; inference reruns over growing VP subsets.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	bdrmapit "repro"
	"repro/simnet"
)

func main() {
	log.SetFlags(0)

	net, err := simnet.Generate(simnet.Options{Small: true, Seed: 5, NumVPs: 20})
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "bdrmapit-vpsweep")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	paths, err := net.WriteDataset(dir)
	if err != nil {
		log.Fatal(err)
	}
	truth, err := simnet.ReadGroundTruth(paths.GroundTruth)
	if err != nil {
		log.Fatal(err)
	}
	vps := net.VPNames()

	fmt.Printf("%-6s %-12s %-14s %s\n", "VPs", "links", "adjacencies", "router accuracy")
	for _, n := range []int{5, 10, 15, len(vps)} {
		subset := make(map[string]bool, n)
		for _, vp := range vps[:n] {
			subset[vp] = true
		}
		sub := filepath.Join(dir, fmt.Sprintf("traces-%d.jsonl", n))
		if _, err := bdrmapit.FilterTracesByVP(paths.Traceroutes, sub,
			func(vp string) bool { return subset[vp] }); err != nil {
			log.Fatal(err)
		}
		res, err := bdrmapit.Run(bdrmapit.Sources{
			TraceroutePaths:    []string{sub},
			BGPRIBPaths:        []string{paths.RIB},
			RIRDelegationPaths: []string{paths.Delegations},
			IXPPrefixListPaths: []string{paths.IXPPrefixes},
			AliasNodePaths:     []string{paths.Aliases},
		}, bdrmapit.Options{})
		if err != nil {
			log.Fatal(err)
		}
		correct, total := 0, 0
		for addr, owner := range truth {
			if inferred, ok := res.RouterOperator(addr); ok {
				total++
				if inferred == owner {
					correct++
				}
			}
		}
		fmt.Printf("%-6d %-12d %-14d %.1f%% of %d interfaces\n",
			n, len(res.InterdomainLinks()), len(res.ASLinks()),
			100*float64(correct)/float64(total), total)
	}
	fmt.Println("\nvisible links grow with VPs; accuracy holds (paper Figs. 18-19)")
}
