// Quickstart: generate a small synthetic measurement dataset, run the
// bdrmapIT inference over the files, and print the inferred interdomain
// links — the complete zero-to-borders workflow in one program.
package main

import (
	"fmt"
	"log"
	"os"

	bdrmapit "repro"
	"repro/simnet"
)

func main() {
	log.SetFlags(0)

	// 1. Generate a small synthetic Internet and its measurement
	// campaign (≈50 ASes, ≈20 vantage points).
	net, err := simnet.Generate(simnet.Options{Small: true, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	st := net.Stats()
	fmt.Printf("synthetic Internet: %d ASes, %d routers, %d traceroutes\n",
		st.ASes, st.Routers, st.Traces)

	dir, err := os.MkdirTemp("", "bdrmapit-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	paths, err := net.WriteDataset(dir)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Run bdrmapIT over the dataset files, exactly as one would over
	// real archives (ITDK traceroutes, Routeviews RIBs, RIR delegations,
	// PeeringDB prefixes, CAIDA relationships, MIDAR nodes).
	res, err := bdrmapit.Run(bdrmapit.Sources{
		TraceroutePaths:     []string{paths.Traceroutes},
		BGPRIBPaths:         []string{paths.RIB},
		RIRDelegationPaths:  []string{paths.Delegations},
		IXPPrefixListPaths:  []string{paths.IXPPrefixes},
		ASRelationshipPaths: []string{paths.Relationships},
		AliasNodePaths:      []string{paths.Aliases},
	}, bdrmapit.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inference: %d routers from %d interfaces, %d refinement iterations\n",
		res.NumRouters(), res.NumInterfaces(), res.Iterations)

	// 3. Report what was found.
	links := res.InterdomainLinks()
	fmt.Printf("inferred %d interdomain links (%d AS adjacencies); first ten:\n",
		len(links), len(res.ASLinks()))
	for i, l := range links {
		if i == 10 {
			break
		}
		fmt.Printf("  AS%-5d ↔ AS%-5d at %-16s confidence=%s\n",
			l.NearAS, l.FarAS, l.FarAddr, l.Confidence)
	}

	// 4. Score against the simulator's ground truth.
	truth, err := simnet.ReadGroundTruth(paths.GroundTruth)
	if err != nil {
		log.Fatal(err)
	}
	correct, total := 0, 0
	for addr, owner := range truth {
		inferred, ok := res.RouterOperator(addr)
		if !ok {
			continue
		}
		total++
		if inferred == owner {
			correct++
		}
	}
	fmt.Printf("router-operator accuracy vs ground truth: %.1f%% over %d observed interfaces\n",
		100*float64(correct)/float64(total), total)
}
