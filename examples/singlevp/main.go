// Single-VP border mapping: the original bdrmap scenario (paper §7.1).
// A vantage point inside one network maps that network's borders — who
// it interconnects with, at which router interfaces — from targeted
// traceroutes to every routed prefix.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	bdrmapit "repro"
	"repro/simnet"
)

func main() {
	log.SetFlags(0)

	// A campaign from a single vantage point inside the tier-1
	// ground-truth network.
	net, err := simnet.Generate(simnet.Options{Small: true, Seed: 7, SingleVPIn: "Tier1"})
	if err != nil {
		log.Fatal(err)
	}
	gt := net.GroundTruthNetworks()
	vpNet := gt["Tier1"]
	fmt.Printf("mapping the borders of AS%d from a single internal VP (%v)\n",
		vpNet, net.VPNames())

	dir, err := os.MkdirTemp("", "bdrmapit-singlevp")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	paths, err := net.WriteDataset(dir)
	if err != nil {
		log.Fatal(err)
	}
	res, err := bdrmapit.Run(bdrmapit.Sources{
		TraceroutePaths:     []string{paths.Traceroutes},
		BGPRIBPaths:         []string{paths.RIB},
		RIRDelegationPaths:  []string{paths.Delegations},
		IXPPrefixListPaths:  []string{paths.IXPPrefixes},
		ASRelationshipPaths: []string{paths.Relationships},
		AliasNodePaths:      []string{paths.Aliases},
	}, bdrmapit.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// The VP network's neighbours: far side of every inferred link that
	// involves it.
	neighborLinks := make(map[uint32]int)
	for _, l := range res.InterdomainLinks() {
		switch vpNet {
		case l.NearAS:
			neighborLinks[l.FarAS]++
		case l.FarAS:
			neighborLinks[l.NearAS]++
		}
	}
	var neighbors []uint32
	for n := range neighborLinks {
		neighbors = append(neighbors, n)
	}
	sort.Slice(neighbors, func(i, j int) bool {
		return neighborLinks[neighbors[i]] > neighborLinks[neighbors[j]]
	})
	fmt.Printf("inferred %d interconnected networks:\n", len(neighbors))
	for i, n := range neighbors {
		if i == 15 {
			fmt.Printf("  … and %d more\n", len(neighbors)-15)
			break
		}
		fmt.Printf("  AS%-6d %d border link(s)\n", n, neighborLinks[n])
	}

	// Validate against ground truth, the way the paper's operators did.
	truth, err := simnet.ReadGroundTruth(paths.GroundTruth)
	if err != nil {
		log.Fatal(err)
	}
	correct, total := 0, 0
	for _, l := range res.InterdomainLinks() {
		if l.NearAS != vpNet && l.FarAS != vpNet {
			continue
		}
		total++
		if truth[l.FarAddr] == l.FarAS {
			correct++
		}
	}
	if total > 0 {
		fmt.Printf("far-side operator correct for %.1f%% of the %d links involving AS%d\n",
			100*float64(correct)/float64(total), total, vpNet)
	}
}
