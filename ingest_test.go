package bdrmapit

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/delta"
	"repro/simnet"
)

// splitCorpus carves the topology's traceroute archive into a base
// corpus and three batch files, plus the merged archive a from-scratch
// oracle run consumes. The split is by line, so every piece is a valid
// JSONL file and base+batches concatenated is byte-identical to the
// merged archive.
func splitCorpus(t *testing.T, tracePath, dir string) (base string, batches []string, merged string) {
	t.Helper()
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimRight(string(data), "\n")+"\n", "\n")
	lines = lines[:len(lines)-1] // SplitAfter leaves a trailing ""
	if len(lines) < 10 {
		t.Fatalf("corpus too small to split: %d lines", len(lines))
	}
	cut := len(lines) * 3 / 5
	parts := [][]string{lines[:cut]}
	rest := lines[cut:]
	third := (len(rest) + 2) / 3
	for len(rest) > 0 {
		n := third
		if n > len(rest) {
			n = len(rest)
		}
		parts = append(parts, rest[:n])
		rest = rest[n:]
	}
	for len(parts) < 4 {
		t.Fatalf("split produced %d parts", len(parts))
	}
	names := []string{"base.jsonl", "batch-1.jsonl", "batch-2.jsonl", "batch-3.jsonl"}
	paths := make([]string, len(names))
	for i, name := range names {
		paths[i] = filepath.Join(dir, name)
		if err := os.WriteFile(paths[i], []byte(strings.Join(parts[i], "")), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	merged = filepath.Join(dir, "merged.jsonl")
	if err := os.WriteFile(merged, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return paths[0], paths[1:], merged
}

// TestIngestSession is the Go-API continuous-ingest end-to-end: absorb
// three good batches and one poison batch with the equivalence oracle
// armed, prove the published annotations byte-identical to a
// from-scratch run over the merged corpus, then prove re-offers are
// idempotent and replayed content under a new name is quarantined
// without disturbing the victim's applied state.
func TestIngestSession(t *testing.T) {
	p := writeTopology(t, simnet.Options{Small: true, Seed: 42})
	dir := t.TempDir()
	base, batches, merged := splitCorpus(t, p.Traceroutes, dir)
	poison := filepath.Join(dir, "poison.jsonl")
	if err := os.WriteFile(poison, []byte("this is not a traceroute record\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	src := topoSources(p)
	src.TraceroutePaths = []string{base}
	stateDir := filepath.Join(dir, "state")
	annOut := filepath.Join(dir, "annotations.txt")
	opts := IngestOptions{
		StateDir:        stateDir,
		AnnotationsPath: annOut,
		VerifyDelta:     true,
		Run:             Options{Workers: 4, WarnWriter: io.Discard},
	}
	offer := []string{batches[0], batches[1], poison, batches[2]}

	res, err := Ingest(src, offer, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupted {
		t.Fatal("uninterrupted session reports Interrupted")
	}
	if res.Absorbed != 3 || res.Skipped != 0 || res.Quarantined != 1 {
		t.Fatalf("absorbed=%d skipped=%d quarantined=%d, want 3/0/1",
			res.Absorbed, res.Skipped, res.Quarantined)
	}
	wantDecisions := []string{"absorb", "absorb", "poison", "absorb"}
	if len(res.Outcomes) != len(wantDecisions) {
		t.Fatalf("outcomes = %d, want %d", len(res.Outcomes), len(wantDecisions))
	}
	for i, o := range res.Outcomes {
		if o.Decision != wantDecisions[i] {
			t.Errorf("outcome %d (%s): decision %q, want %q", i, o.Name, o.Decision, wantDecisions[i])
		}
	}
	if o := res.Outcomes[2]; !o.Quarantined || o.Reason != "decode" {
		t.Errorf("poison outcome = %+v, want quarantined with reason decode", o)
	}

	// The quarantine directory holds exactly the poison batch: its
	// bytes and a typed reason file.
	qdir := filepath.Join(stateDir, delta.QuarantineDir)
	entries, err := os.ReadDir(qdir)
	if err != nil {
		t.Fatal(err)
	}
	var reasons, copies int
	for _, e := range entries {
		switch filepath.Ext(e.Name()) {
		case ".reason":
			reasons++
			data, err := os.ReadFile(filepath.Join(qdir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(string(data), "class: decode") ||
				!strings.Contains(string(data), "batch: poison.jsonl") {
				t.Errorf("reason file:\n%s", data)
			}
		case ".jsonl":
			copies++
		}
	}
	if reasons != 1 || copies != 1 {
		t.Fatalf("quarantine dir holds %d reasons, %d copies; want 1 and 1", reasons, copies)
	}

	// Equivalence oracle at the session level: the published
	// annotations match a from-scratch run over the merged corpus.
	oracleSrc := topoSources(p)
	oracleSrc.TraceroutePaths = []string{merged}
	oracle, err := Run(oracleSrc, Options{Workers: 1, WarnWriter: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	want := annotationBytes(t, oracle)
	got, err := os.ReadFile(annOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("ingested annotations differ from from-scratch run on the merged corpus")
	}

	// Re-offering the same batches is free: everything skips, the
	// quarantined batch stays quarantined, and the output is unchanged.
	again, err := Ingest(src, offer, opts)
	if err != nil {
		t.Fatal(err)
	}
	if again.Absorbed != 0 || again.Skipped != 4 || again.Quarantined != 0 {
		t.Fatalf("re-offer: absorbed=%d skipped=%d quarantined=%d, want 0/4/0",
			again.Absorbed, again.Skipped, again.Quarantined)
	}
	for i, wantD := range []string{"skip", "skip", "skip-quarantined", "skip"} {
		if got := again.Outcomes[i].Decision; got != wantD {
			t.Errorf("re-offer outcome %d: %q, want %q", i, got, wantD)
		}
	}
	got2, err := os.ReadFile(annOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, want) {
		t.Fatal("re-offer session changed the published annotations")
	}

	// Replay: batch-1's exact bytes under a new name are poison. The
	// impostor is quarantined under a name-derived fingerprint, and the
	// victim's applied state is untouched — re-offering the real
	// batch-1 still skips as applied.
	b1, err := os.ReadFile(batches[0])
	if err != nil {
		t.Fatal(err)
	}
	sneaky := filepath.Join(dir, "sneaky.jsonl")
	if err := os.WriteFile(sneaky, b1, 0o644); err != nil {
		t.Fatal(err)
	}
	replay, err := Ingest(src, []string{sneaky, batches[0]}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if replay.Quarantined != 1 || replay.Skipped != 1 {
		t.Fatalf("replay: quarantined=%d skipped=%d, want 1/1", replay.Quarantined, replay.Skipped)
	}
	if o := replay.Outcomes[0]; o.Decision != "poison" || o.Reason != "replay" {
		t.Errorf("replay outcome = %+v, want poison/replay", o)
	}
	if o := replay.Outcomes[1]; o.Decision != "skip" || o.Quarantined {
		t.Errorf("victim outcome after replay = %+v, want clean skip", o)
	}

	// A re-offered replay skips without re-journaling.
	replay2, err := Ingest(src, []string{sneaky}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if o := replay2.Outcomes[0]; o.Decision != "skip-quarantined" {
		t.Errorf("re-offered replay = %+v, want skip-quarantined", o)
	}

	// The published annotations never moved through any of it.
	got3, err := os.ReadFile(annOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got3, want) {
		t.Fatal("replay sessions changed the published annotations")
	}
}

// TestIngestRefusals covers the session-level guard rails: a missing
// state directory, a missing base corpus, and provenance collection
// (meaningless under delta refinement) are refused up front.
func TestIngestRefusals(t *testing.T) {
	p := writeTopology(t, simnet.Options{Small: true, Seed: 42})
	src := topoSources(p)
	if _, err := Ingest(src, nil, IngestOptions{}); err == nil ||
		!strings.Contains(err.Error(), "StateDir") {
		t.Errorf("missing StateDir: %v", err)
	}
	if _, err := Ingest(Sources{}, nil, IngestOptions{StateDir: t.TempDir()}); err == nil ||
		!strings.Contains(err.Error(), "traceroute") {
		t.Errorf("missing base corpus: %v", err)
	}
	if _, err := Ingest(src, nil, IngestOptions{
		StateDir: t.TempDir(),
		Run:      Options{Provenance: true},
	}); err == nil || !strings.Contains(err.Error(), "provenance") {
		t.Errorf("provenance under delta: %v", err)
	}
}
