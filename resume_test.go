package bdrmapit

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/obs"
	"repro/simnet"
)

// resumeTopologies are the example-program topologies the golden resume
// tests replay: the quickstart network and the vantage-point-sweep
// network, so resume correctness is proven on the exact datasets the
// documentation tells users to start from.
var resumeTopologies = []struct {
	name string
	gen  simnet.Options
}{
	{"quickstart", simnet.Options{Small: true, Seed: 42}},
	{"vpsweep", simnet.Options{Small: true, Seed: 5, NumVPs: 20}},
}

func writeTopology(t *testing.T, gen simnet.Options) *simnet.DatasetPaths {
	t.Helper()
	n, err := simnet.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := n.WriteDataset(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

func topoSources(p *simnet.DatasetPaths) Sources {
	return Sources{
		TraceroutePaths:     []string{p.Traceroutes},
		BGPRIBPaths:         []string{p.RIB},
		RIRDelegationPaths:  []string{p.Delegations},
		IXPPrefixListPaths:  []string{p.IXPPrefixes},
		ASRelationshipPaths: []string{p.Relationships},
		AliasNodePaths:      []string{p.Aliases},
	}
}

func runTopo(t *testing.T, p *simnet.DatasetPaths, opts Options) (*Result, error) {
	t.Helper()
	opts.WarnWriter = io.Discard
	if opts.Recorder == nil {
		opts.Recorder = obs.New()
	}
	return Run(topoSources(p), opts)
}

func annotationBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.Annotations(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestResumeAtEveryIterationGolden is the end-to-end resume guarantee
// on both example topologies: interrupt the run after every possible
// committed iteration k, resume through the public API, and the final
// annotation bytes, loop metadata, and stitched convergence trace are
// identical to a run that was never interrupted.
func TestResumeAtEveryIterationGolden(t *testing.T) {
	for _, topo := range resumeTopologies {
		topo := topo
		t.Run(topo.name, func(t *testing.T) {
			p := writeTopology(t, topo.gen)
			full, err := runTopo(t, p, Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			if !full.Converged {
				t.Fatalf("%s topology no longer converges", topo.name)
			}
			want := annotationBytes(t, full)
			wantTrace := full.Report.Series["refine.iterations"]
			total := full.Iterations

			for k := 1; k < total; k++ {
				dir := t.TempDir()
				capped, err := runTopo(t, p, Options{
					Workers:       1,
					MaxIterations: k,
					CheckpointDir: dir,
				})
				if err != nil {
					t.Fatalf("k=%d: capped run: %v", k, err)
				}
				if capped.Iterations != k {
					t.Fatalf("k=%d: capped run stopped at %d", k, capped.Iterations)
				}
				// Resume at a different worker count: snapshots are
				// worker-invariant by construction.
				res, err := runTopo(t, p, Options{
					Workers:       2,
					CheckpointDir: dir,
					Resume:        true,
				})
				if err != nil {
					t.Fatalf("k=%d: resume: %v", k, err)
				}
				if res.ResumedFrom != k {
					t.Errorf("k=%d: ResumedFrom=%d", k, res.ResumedFrom)
				}
				if res.Iterations != total || !res.Converged {
					t.Errorf("k=%d: resumed run iter=%d conv=%v, want %d/true",
						k, res.Iterations, res.Converged, total)
				}
				if got := annotationBytes(t, res); !bytes.Equal(got, want) {
					t.Errorf("k=%d: resumed annotations differ from uninterrupted run", k)
				}
				gotTrace := res.Report.Series["refine.iterations"]
				if len(gotTrace) != len(wantTrace) {
					t.Fatalf("k=%d: stitched trace has %d rows, want %d", k, len(gotTrace), len(wantTrace))
				}
				for i, wr := range wantTrace {
					for key, v := range wr {
						if gotTrace[i][key] != v {
							t.Errorf("k=%d: trace row %d key %q = %d, want %d",
								k, i, key, gotTrace[i][key], v)
						}
					}
				}
				if res.Report.ResumedFrom != k {
					t.Errorf("k=%d: Report.ResumedFrom=%d", k, res.Report.ResumedFrom)
				}
			}
		})
	}
}

// TestResumeRefusesForeignCheckpoint covers the public-API refusal
// paths: resuming against edited inputs, different heuristics, a
// missing snapshot, or another topology's checkpoint must fail with the
// typed errors, never silently produce a blended result.
func TestResumeRefusesForeignCheckpoint(t *testing.T) {
	p := writeTopology(t, simnet.Options{Small: true, Seed: 42})
	dir := t.TempDir()
	if _, err := runTopo(t, p, Options{Workers: 1, MaxIterations: 1, CheckpointDir: dir}); err != nil {
		t.Fatal(err)
	}

	t.Run("edited-input", func(t *testing.T) {
		edited := *p
		mut := filepath.Join(t.TempDir(), "as-rel.txt")
		data, err := os.ReadFile(p.Relationships)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(mut, append(data, []byte("# trailing comment\n")...), 0o644); err != nil {
			t.Fatal(err)
		}
		edited.Relationships = mut
		_, err = runTopo(t, &edited, Options{Workers: 1, CheckpointDir: dir, Resume: true})
		var me *ckpt.MismatchError
		if !errors.As(err, &me) || me.Field != "inputs" {
			t.Fatalf("err = %v, want *MismatchError{Field: inputs}", err)
		}
	})
	t.Run("different-options", func(t *testing.T) {
		_, err := runTopo(t, p, Options{
			Workers: 1, DisableHiddenAS: true,
			CheckpointDir: dir, Resume: true,
		})
		var me *ckpt.MismatchError
		if !errors.As(err, &me) || me.Field != "options" {
			t.Fatalf("err = %v, want *MismatchError{Field: options}", err)
		}
	})
	t.Run("missing-checkpoint", func(t *testing.T) {
		_, err := runTopo(t, p, Options{Workers: 1, CheckpointDir: t.TempDir(), Resume: true})
		if !errors.Is(err, ckpt.ErrNoCheckpoint) {
			t.Fatalf("err = %v, want ErrNoCheckpoint", err)
		}
	})
	t.Run("other-topology", func(t *testing.T) {
		other := writeTopology(t, simnet.Options{Small: true, Seed: 5, NumVPs: 20})
		_, err := runTopo(t, other, Options{Workers: 1, CheckpointDir: dir, Resume: true})
		var me *ckpt.MismatchError
		if !errors.As(err, &me) {
			t.Fatalf("err = %v, want *MismatchError", err)
		}
	})
}

// TestCheckpointDirCreated: the public API creates the checkpoint
// directory on demand, so operators can point at a path that does not
// exist yet.
func TestCheckpointDirCreated(t *testing.T) {
	p := writeTopology(t, simnet.Options{Small: true, Seed: 42})
	dir := filepath.Join(t.TempDir(), "nested", "ckpts")
	if _, err := runTopo(t, p, Options{Workers: 1, MaxIterations: 1, CheckpointDir: dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, ckpt.FileName)); err != nil {
		t.Fatalf("snapshot not written into auto-created dir: %v", err)
	}
}
